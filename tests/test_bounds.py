"""Static recovery-bound analyzer (Layer 4): unit + property tests.

Covers the analyzer's output shape, the conviction-profile model, the
``bound.*`` rule family (including the pinned-vs-derived severity
split and waivers), the ``repro bounds`` CLI exit codes, and the two
soundness populations that do not need a benchmark sweep: a
hypothesis-driven fault grid and the committed fuzz ``corpus/``.
"""

import dataclasses
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import BTRConfig, BTRSystem
from repro.cli import main as cli_main
from repro.faults import SingleFaultAdversary
from repro.fuzz import load_corpus
from repro.mc import replay_counterexample
from repro.net import full_mesh_topology
from repro.obs import reconstruct_timelines
from repro.obs.recovery import PHASES
from repro.verify.bounds import (FAULT_CLASSES, SoundnessCheck,
                                 bounds_findings, check_timelines,
                                 class_of_kind, compute_bounds,
                                 conviction_profile)
from repro.verify.findings import Report, Severity
from repro.workload import (automotive_workload, industrial_workload,
                            pipeline_workload)

CORPUS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "corpus")

ANALYZED_KINDS = ("crash", "omission", "commission", "equivocation",
                  "timing", "rogue_clock")


@pytest.fixture(scope="module")
def pipeline_system():
    system = BTRSystem(pipeline_workload(),
                       full_mesh_topology(4, bandwidth=1e8),
                       BTRConfig(f=1, seed=42))
    system.prepare()
    return system


@pytest.fixture(scope="module")
def pipeline_report(pipeline_system):
    return compute_bounds(pipeline_system.strategy,
                          pipeline_system.topology,
                          pipeline_system.lane_model,
                          pipeline_system.config,
                          budget=pipeline_system.budget)


@pytest.fixture(scope="module")
def industrial_system():
    system = BTRSystem(industrial_workload(),
                       full_mesh_topology(5, bandwidth=1e8),
                       BTRConfig(f=1, seed=42))
    system.prepare()
    return system


@pytest.fixture(scope="module")
def industrial_report(industrial_system):
    return compute_bounds(industrial_system.strategy,
                          industrial_system.topology,
                          industrial_system.lane_model,
                          industrial_system.config,
                          budget=industrial_system.budget)


# ----------------------------------------------------------- report shape


def test_report_covers_every_mode_and_class(industrial_system,
                                            industrial_report):
    report = industrial_report
    strategy = industrial_system.strategy
    modes = {e.mode for e in report.entries}
    # Only non-terminal modes (those with a further fault to recover
    # from) are bounded; at f=1 that is exactly the nominal mode.
    expected = {strategy.plan_for(p).mode for p in strategy.patterns()
                if len(p) < strategy.f}
    assert modes == expected
    for mode in modes:
        assert {e.fault_class for e in report.for_mode(mode)} \
            == set(FAULT_CLASSES)
    for entry in report.entries:
        assert set(entry.phases) == set(PHASES)
        assert all(isinstance(v, int) and v >= 0
                   for v in entry.phases.values())
        assert entry.total_us == sum(entry.phases.values())


def test_benchmark_deployment_within_budget(industrial_report):
    assert industrial_report.exceeding() == []
    assert all(e.total_us <= industrial_report.R_us
               for e in industrial_report.entries)


def test_worst_for_class_dominates_every_mode(industrial_report):
    for fault_class in FAULT_CLASSES:
        merged = industrial_report.worst_for_class(fault_class)
        for entry in industrial_report.for_class(fault_class):
            for phase in PHASES:
                assert merged.phases[phase] >= entry.phases[phase]
            for victim, total in entry.victim_totals.items():
                assert merged.victim_totals[victim] >= total


def test_worst_for_kind_maps_through_class(industrial_report):
    for kind in ANALYZED_KINDS:
        bound = industrial_report.worst_for_kind(kind)
        assert bound is not None
        assert bound.fault_class == class_of_kind(kind)
    # evidence_flood attacks the control plane itself: out of scope,
    # explicitly unbounded rather than silently bounded wrong.
    assert class_of_kind("evidence_flood") is None
    assert industrial_report.worst_for_kind("evidence_flood") is None


def test_report_roundtrips_to_dict(industrial_report):
    payload = industrial_report.to_dict()
    assert payload["R_us"] == industrial_report.R_us
    assert len(payload["entries"]) == len(industrial_report.entries)
    json.dumps(payload)  # must be JSON-serialisable as exported


# ----------------------------------------------------- conviction profile


def test_conviction_profile_reachable_victim(industrial_system):
    strategy = industrial_system.strategy
    config = industrial_system.config
    plan = strategy.plan_for(frozenset())
    reachable = [
        victim for victim in industrial_system.compromisable_nodes()
        if conviction_profile(plan, victim, config).periods is not None
    ]
    assert reachable, "some victim must be statically attributable"
    for victim in reachable:
        profile = conviction_profile(plan, victim, config)
        assert profile.slots_per_period > 0
        assert profile.declarers >= config.blame_min_declarers
        # Strict dominance: every co-charged rival accrues fewer slots.
        assert profile.co_charged_max < profile.slots_per_period
        assert profile.periods >= 1


def test_conviction_profile_single_declarer_unreachable():
    # Automotive on fullmesh:5 leaves one victim with a single distinct
    # declarer — the paper's single-counterparty omission corner (E9).
    system = BTRSystem(automotive_workload(),
                       full_mesh_topology(5, bandwidth=1e8),
                       BTRConfig(f=1, seed=42))
    system.prepare()
    plan = system.strategy.plan_for(frozenset())
    profiles = {victim: conviction_profile(plan, victim, system.config)
                for victim in system.compromisable_nodes()}
    unreachable = {v: p for v, p in profiles.items()
                   if p.periods is None}
    assert unreachable, "expected the single-declarer corner"
    assert any("declarer" in p.reason for p in unreachable.values())


def test_conviction_profile_off_route_node(pipeline_system):
    plan = pipeline_system.strategy.plan_for(frozenset())
    routed = {node for route in plan.routes.values() for node in route}
    off_route = [n for n in pipeline_system.topology.node_ids()
                 if n not in routed]
    for victim in off_route:
        profile = conviction_profile(plan, victim,
                                     pipeline_system.config)
        assert profile.periods is None
        assert profile.slots_per_period == 0


# ------------------------------------------------------------ bound rules


def test_rules_clean_on_benchmark_deployment(industrial_system):
    findings = bounds_findings(industrial_system.strategy,
                               industrial_system.topology,
                               industrial_system.lane_model,
                               industrial_system.config,
                               budget=industrial_system.budget)
    assert [f for f in findings if f.rule == "bound.exceeds-budget"] \
        == []


def test_exceeds_budget_error_when_r_pinned(industrial_system):
    config = dataclasses.replace(industrial_system.config, R_us=50_000)
    findings = bounds_findings(industrial_system.strategy,
                               industrial_system.topology,
                               industrial_system.lane_model,
                               config, budget=industrial_system.budget)
    exceeds = [f for f in findings if f.rule == "bound.exceeds-budget"]
    assert exceeds, "a 50ms pinned R must be exceeded"
    assert all(f.severity is Severity.ERROR for f in exceeds)
    # A pinned R this low is dominated by single phases too.
    assert any(f.rule == "bound.phase-dominates-r" for f in findings)


def test_exceeds_budget_warning_when_r_derived(pipeline_system,
                                               pipeline_report):
    # Force the derived-R path onto an exceeding report by shrinking
    # R_us in the computed report rather than pinning config.R_us.
    assert pipeline_system.config.R_us is None
    tight = dataclasses.replace(pipeline_report,
                                R_us=pipeline_report.entries[0].total_us
                                // 2)
    findings = bounds_findings(pipeline_system.strategy,
                               pipeline_system.topology,
                               pipeline_system.lane_model,
                               pipeline_system.config, report=tight)
    exceeds = [f for f in findings if f.rule == "bound.exceeds-budget"]
    assert exceeds
    assert all(f.severity is Severity.WARNING for f in exceeds)


def test_waive_by_rule_and_subject(industrial_system):
    config = dataclasses.replace(industrial_system.config, R_us=50_000)
    report = Report(bounds_findings(
        industrial_system.strategy, industrial_system.topology,
        industrial_system.lane_model, config,
        budget=industrial_system.budget))
    assert report.findings
    # Whole-rule waiver drops every finding of that rule.
    waived = report.waive(["bound.exceeds-budget",
                           "bound.phase-dominates-r"])
    assert waived.findings == []
    # Subject-scoped waiver drops only the named subject.
    subjects = {f.subject for f in report.findings
                if f.rule == "bound.exceeds-budget"}
    target = sorted(subjects)[0]
    partial = report.waive([f"bound.exceeds-budget:{target}"])
    remaining = {f.subject for f in partial.findings
                 if f.rule == "bound.exceeds-budget"}
    assert target not in remaining
    assert remaining == subjects - {target}


# -------------------------------------------------------------- bounds CLI


def test_cli_bounds_within_budget_exits_zero(tmp_path, capsys):
    out = tmp_path / "bounds.json"
    rc = cli_main(["bounds", "--workload", "industrial",
                   "--topology", "fullmesh:5", "--f", "1",
                   "--json", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["entries"]
    assert all(e["total_us"] <= payload["R_us"]
               for e in payload["entries"])
    assert "all bounds within" in capsys.readouterr().out


def test_cli_bounds_underprovisioned_exits_nonzero(capsys):
    rc = cli_main(["bounds", "--workload", "industrial",
                   "--topology", "fullmesh:5", "--f", "1",
                   "--R", "0.05"])
    assert rc == 1
    assert "EXCEED" in capsys.readouterr().out


# ------------------------------------------------------ soundness: corpus


def test_corpus_replay_soundness(pipeline_report):
    entries = load_corpus(CORPUS_DIR)
    assert entries, "the committed corpus must not be empty"
    check = SoundnessCheck()
    for _name, payload in entries:
        meta = payload["meta"]
        assert (meta["workload"], meta["topology"]) \
            == ("pipeline", "fullmesh:4")
        system = BTRSystem(
            pipeline_workload(),
            full_mesh_topology(4, bandwidth=meta["bandwidth"]),
            BTRConfig(f=meta["f"], seed=meta["seed"]))
        system.prepare()
        report = compute_bounds(system.strategy, system.topology,
                                system.lane_model, system.config,
                                budget=system.budget)
        _, result = replay_counterexample(system, payload)
        check_timelines(report, reconstruct_timelines(result), check)
    assert check.checked > 0
    assert check.ok, [str(v) for v in check.violations]


# --------------------------------------------------- soundness: property


@settings(max_examples=12, deadline=None)
@given(kind=st.sampled_from(ANALYZED_KINDS),
       victim_index=st.integers(min_value=0, max_value=10 ** 6),
       offset=st.integers(min_value=0, max_value=10 ** 6))
def test_property_static_bound_dominates_empirical(kind, victim_index,
                                                   offset):
    """For any single fault the simulator produces, every empirical
    phase span and the end-to-end recovery sit at or below the static
    bound of the fault's class (the analyzer's soundness claim)."""
    workload = pipeline_workload()
    topology = full_mesh_topology(4, bandwidth=1e8)
    config = BTRConfig(f=1, seed=42)
    system = BTRSystem(workload, topology, config)
    system.prepare()
    report = compute_bounds(system.strategy, system.topology,
                            system.lane_model, system.config,
                            budget=system.budget)
    victims = [n for n in system.topology.node_ids()
               if system.strategy.has_plan(frozenset({n}))]
    victim = victims[victim_index % len(victims)]
    period = system.strategy.nominal.workload.period
    at = 4 * period + offset % period
    result = system.run(20, SingleFaultAdversary(at=at, kind=kind,
                                                 node=victim))
    check = check_timelines(report, reconstruct_timelines(result))
    assert check.ok, [str(v) for v in check.violations]
