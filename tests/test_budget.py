"""Unit tests for recovery-budget accounting (R := D/f and friends)."""

import pytest

from repro import BTRConfig, BTRSystem
from repro.core.runtime.budget import (
    compute_budget,
    detection_bound,
    distribution_bound,
    recovery_bound_for_deadline,
)
from repro.net import Router, full_mesh_topology, line_topology, ring_topology
from repro.sched import LaneModel
from repro.sim import ms, seconds
from repro.workload import industrial_workload


def test_r_equals_d_over_f():
    assert recovery_bound_for_deadline(seconds(10), 1) == seconds(10)
    assert recovery_bound_for_deadline(seconds(10), 2) == seconds(5)
    assert recovery_bound_for_deadline(seconds(9), 4) == 2_250_000


def test_r_rule_rejects_nonsense():
    with pytest.raises(ValueError):
        recovery_bound_for_deadline(0, 1)
    with pytest.raises(ValueError):
        recovery_bound_for_deadline(seconds(1), 0)


def test_distribution_bound_grows_with_diameter():
    config = BTRConfig(f=1)
    mesh = full_mesh_topology(7, bandwidth=1e8)      # diameter 1
    ring = ring_topology(7, bandwidth=1e8)           # diameter 3
    line = line_topology(7, bandwidth=1e8)           # diameter 6
    bounds = [
        distribution_bound(topo, LaneModel(topo), config)
        for topo in (mesh, ring, line)
    ]
    assert bounds[0] < bounds[1] < bounds[2]


def test_distribution_bound_shrinks_with_bandwidth():
    config = BTRConfig(f=1)
    slow = ring_topology(6, bandwidth=1e6)
    fast = ring_topology(6, bandwidth=1e9)
    assert (distribution_bound(fast, LaneModel(fast), config)
            < distribution_bound(slow, LaneModel(slow), config))


def test_detection_bound_dominated_by_omission_accumulation():
    period = ms(50)
    config = BTRConfig(f=1, blame_slot_threshold=3)
    bound = detection_bound(period, config)
    assert bound >= 3 * period  # slot accumulation dominates
    tighter = detection_bound(period, BTRConfig(f=1, blame_slot_threshold=1))
    assert tighter < bound


def test_compute_budget_components_positive_and_consistent():
    system = BTRSystem(industrial_workload(),
                       full_mesh_topology(7, bandwidth=1e8),
                       BTRConfig(f=1, seed=1))
    budget = system.prepare()
    assert budget.detection_us > 0
    assert budget.distribution_us > 0
    assert budget.switch_us > budget.distribution_us  # lead + period
    assert budget.settling_us >= industrial_workload().period
    assert budget.total_us == (budget.detection_us + budget.distribution_us
                               + budget.switch_us + budget.settling_us)


def test_explicit_switch_lead_overrides_derivation():
    system = BTRSystem(industrial_workload(),
                       full_mesh_topology(7, bandwidth=1e8),
                       BTRConfig(f=1, seed=1, switch_lead_us=ms(40)))
    system.prepare()
    assert system.switch_lead_us == ms(40)


def test_settling_includes_worst_state_transfer():
    # A strategy whose transitions move big state must budget more
    # settling than one whose transitions move nothing.
    topo = full_mesh_topology(7, bandwidth=1e8)
    system = BTRSystem(industrial_workload(), topo, BTRConfig(f=1, seed=1))
    system.prepare()
    lane_model = system.lane_model
    budget = compute_budget(system.strategy, topo, lane_model,
                            system.router, system.config)
    worst_bits = system.strategy.max_transition_state_bits()
    if worst_bits:
        assert budget.settling_us > industrial_workload().period
