"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.cli import main, make_topology


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


# ----------------------------------------------------------------- topology


def test_make_topology_specs():
    assert len(make_topology("fullmesh:5", 1e8).nodes) == 5
    assert len(make_topology("ring:6", 1e8).nodes) == 6
    assert len(make_topology("mesh:2x3", 1e8).nodes) == 6
    assert len(make_topology("dualstar:4", 1e8).nodes) == 6
    assert len(make_topology("bus:4", 1e8).nodes) == 4


def test_make_topology_rejects_unknown():
    with pytest.raises(SystemExit):
        make_topology("torus:9", 1e8)


# --------------------------------------------------------------------- plan


def test_cli_plan(capsys):
    code, out = run_cli(capsys, "plan", "--workload", "industrial",
                        "--topology", "fullmesh:7")
    assert code == 0
    assert "nominal" in out
    assert "faulty:" in out
    assert "recovery budget" in out


def test_cli_plan_avionics_shows_criticality(capsys):
    code, out = run_cli(capsys, "plan", "--workload", "avionics",
                        "--topology", "fullmesh:8", "--bandwidth", "2e8")
    assert code == 0
    assert "ABCD" in out


# ---------------------------------------------------------------------- run


def test_cli_run_fault_free(capsys):
    code, out = run_cli(capsys, "run", "--periods", "10")
    assert code == 0
    assert "Definition 3.1 holds" in out
    assert "True" in out
    assert "0.000s" in out  # no recovery needed


def test_cli_run_with_fault(capsys):
    code, out = run_cli(capsys, "run", "--periods", "24",
                        "--fault", "commission", "--fault-at", "0.22")
    assert code == 0  # BTR holds -> exit 0
    assert "1 faults" in out


def test_cli_run_rejects_unknown_fault(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--fault", "gremlins"])


# ------------------------------------------------------------------ compare


def test_cli_compare(capsys):
    code, out = run_cli(capsys, "compare", "--periods", "16",
                        "--fault", "crash")
    assert code == 0
    for name in ("btr", "unreplicated", "bft", "zz", "selfstab",
                 "crash_restart"):
        assert name in out
    assert "recovery" in out


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_plan_export(tmp_path, capsys):
    out_file = tmp_path / "strategy.json"
    code, out = run_cli(capsys, "plan", "--export", str(out_file))
    assert code == 0
    assert "strategy written" in out
    from repro.core.planner import strategy_from_json
    restored = strategy_from_json(out_file.read_text())
    assert len(restored) >= 1
