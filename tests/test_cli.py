"""Tests for the command-line interface (``python -m repro``)."""

import pytest

from repro.cli import main, make_topology


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


# ----------------------------------------------------------------- topology


def test_make_topology_specs():
    assert len(make_topology("fullmesh:5", 1e8).nodes) == 5
    assert len(make_topology("ring:6", 1e8).nodes) == 6
    assert len(make_topology("mesh:2x3", 1e8).nodes) == 6
    assert len(make_topology("dualstar:4", 1e8).nodes) == 6
    assert len(make_topology("bus:4", 1e8).nodes) == 4


def test_make_topology_rejects_unknown():
    with pytest.raises(SystemExit):
        make_topology("torus:9", 1e8)


# --------------------------------------------------------------------- plan


def test_cli_plan(capsys):
    code, out = run_cli(capsys, "plan", "--workload", "industrial",
                        "--topology", "fullmesh:7")
    assert code == 0
    assert "nominal" in out
    assert "faulty:" in out
    assert "recovery budget" in out


def test_cli_plan_avionics_shows_criticality(capsys):
    code, out = run_cli(capsys, "plan", "--workload", "avionics",
                        "--topology", "fullmesh:8", "--bandwidth", "2e8")
    assert code == 0
    assert "ABCD" in out


# ---------------------------------------------------------------------- run


def test_cli_run_fault_free(capsys):
    code, out = run_cli(capsys, "run", "--periods", "10")
    assert code == 0
    assert "Definition 3.1 holds" in out
    assert "True" in out
    assert "0.000s" in out  # no recovery needed


def test_cli_run_with_fault(capsys):
    code, out = run_cli(capsys, "run", "--periods", "24",
                        "--fault", "commission", "--fault-at", "0.22")
    assert code == 0  # BTR holds -> exit 0
    assert "1 faults" in out


def test_cli_run_rejects_unknown_fault(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--fault", "gremlins"])


def test_cli_run_batched_matches_reference_output(capsys):
    argv = ("run", "--periods", "12", "--scenario", "single_commission")
    code_ref, out_ref = run_cli(capsys, *argv)
    code_bat, out_bat = run_cli(capsys, *argv, "--batched")
    assert code_ref == code_bat == 0
    # The batched core is behaviour-preserving: the run report (verdict,
    # timeline, message census) is identical text.
    assert out_bat == out_ref


def test_cli_batched_requires_fastpath(capsys):
    with pytest.raises(SystemExit, match="fast path"):
        main(["run", "--batched", "--no-fastpath"])


# ------------------------------------------------------------------ compare


def test_cli_compare(capsys):
    code, out = run_cli(capsys, "compare", "--periods", "16",
                        "--fault", "crash")
    assert code == 0
    for name in ("btr", "unreplicated", "bft", "zz", "selfstab",
                 "crash_restart"):
        assert name in out
    assert "recovery" in out


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_plan_export(tmp_path, capsys):
    out_file = tmp_path / "strategy.json"
    code, out = run_cli(capsys, "plan", "--export", str(out_file))
    assert code == 0
    assert "strategy written" in out
    from repro.core.planner import strategy_from_json
    restored = strategy_from_json(out_file.read_text())
    assert len(restored) >= 1


# -------------------------------------------------------------------- trace


def test_cli_trace_missing_file(tmp_path, capsys):
    code = main(["trace", str(tmp_path / "nope.json")])
    err = capsys.readouterr().err
    assert code == 2
    assert "cannot read report" in err


def test_cli_trace_truncated_json(tmp_path, capsys):
    path = tmp_path / "trunc.json"
    path.write_text('{"version": 1, "faults": [')
    code = main(["trace", str(path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "truncated" in err


def test_cli_trace_structurally_invalid(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 1, "faults": [{"node": "n1"}], '
                    '"period_us": 1, "n_periods": 1, "duration_us": 1, '
                    '"budget": null, "metrics": {}}')
    code = main(["trace", str(path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "faults[0]" in err


def test_cli_trace_renders_valid_report(tmp_path, capsys):
    obs = tmp_path / "run.json"
    code = main(["run", "--workload", "pipeline", "--topology",
                 "fullmesh:4", "--periods", "12", "--fault", "crash",
                 "--fault-at", "0.05", "--obs", str(obs)])
    assert code == 0
    capsys.readouterr()
    code, out = run_cli(capsys, "trace", str(obs))
    assert code == 0
    assert "Recovery phase breakdown" in out


# -------------------------------------------------------------------- check

CHECK_SMOKE = ["check", "--workload", "pipeline", "--topology",
               "fullmesh:4", "--ticks", "1", "--max-depth", "1",
               "--branch", "2", "--max-states", "30"]


def test_cli_check_certifies(capsys):
    code, out = run_cli(capsys, *CHECK_SMOKE, "--kinds", "crash")
    assert code == 0
    assert "CERTIFIED" in out


def test_cli_check_counterexample_and_replay(tmp_path, capsys):
    cex_dir = tmp_path / "cex"
    code, out = run_cli(capsys, *CHECK_SMOKE, "--kinds", "commission",
                        "--R", "0.03", "--cex-dir", str(cex_dir),
                        "--report", str(tmp_path / "report.json"))
    assert code == 1
    assert "NOT CERTIFIED" in out
    assert "replay-confirmed" in out
    artifacts = sorted(cex_dir.glob("cex_*.json"))
    assert artifacts
    code, out = run_cli(capsys, "check", "--replay", str(artifacts[0]))
    assert code == 1
    assert "replay CONFIRMS" in out


def test_cli_check_replay_rejects_bad_artifact(tmp_path, capsys):
    path = tmp_path / "junk.json"
    path.write_text("[1, 2]")
    code = main(["check", "--replay", str(path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "cannot replay artifact" in err


def test_cli_check_rejects_bad_bounds(capsys):
    code = main(["check", "--ticks", "0"])
    assert code == 2
