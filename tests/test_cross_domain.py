"""Cross-domain integration matrix: every domain workload × every fault
kind recovers within its bound, plus targeted resilience scenarios."""

import pytest

from repro import BTRConfig, BTRSystem
from repro.analysis import (
    btr_verdict,
    criticality_survival,
    smallest_sufficient_R,
)
from repro.faults import CrashFault, FaultScript, Injection
from repro.net import full_mesh_topology
from repro.workload import (
    automotive_workload,
    avionics_workload,
    industrial_workload,
    power_grid_workload,
)

DOMAINS = {
    "industrial": (industrial_workload, 7, 1e8, 1.0),
    "avionics": (avionics_workload, 8, 2e8, 2.0),
    "automotive": (automotive_workload, 8, 2e8, 1.0),
    "power_grid": (power_grid_workload, 8, 2e8, 1.0),
}


def prepared(domain):
    factory, n_nodes, bandwidth, speed = DOMAINS[domain]
    system = BTRSystem(
        factory(),
        full_mesh_topology(n_nodes, bandwidth=bandwidth, speed=speed),
        BTRConfig(f=1, seed=77),
    )
    system.prepare()
    return system


def fault_time(system):
    # Mid-run, aligned nowhere in particular.
    return 4 * system.workload.period + system.workload.period // 3


@pytest.mark.parametrize("domain", sorted(DOMAINS))
def test_domain_plans_and_runs_clean(domain):
    system = prepared(domain)
    result = system.run(20)
    assert smallest_sufficient_R(result) == 0
    survival = criticality_survival(result)
    assert all(v == 1.0 for v in survival.values())


@pytest.mark.parametrize("domain", sorted(DOMAINS))
@pytest.mark.parametrize("kind", ["commission", "crash", "omission"])
def test_domain_recovers_from_fault(domain, kind):
    from repro.faults import SingleFaultAdversary

    system = prepared(domain)
    result = system.run(
        32, SingleFaultAdversary(at=fault_time(system), kind=kind))
    verdict = btr_verdict(result, R_us=system.budget.total_us)
    assert verdict.holds, (
        domain, kind,
        [(v.flow, v.period_index, v.status) for v in verdict.violations[:4]],
    )
    faulty = set(result.fault_times())
    for node, fault_set in result.final_fault_sets.items():
        if node not in faulty:
            assert fault_set <= faulty, (domain, kind, node)


@pytest.mark.parametrize("domain", sorted(DOMAINS))
def test_checker_host_crash_is_masked_by_reconstruction(domain):
    """Kill the node hosting the most checkers: the audit-reconstruction
    fallback must keep outputs flowing until the mode switch isolates it,
    without implicating any starved innocent."""
    system = prepared(domain)
    plan = system.strategy.nominal
    candidates = system.compromisable_nodes()
    victim = max(
        candidates,
        key=lambda n: sum(1 for i in plan.instances_on(n)
                          if i.endswith("#c")),
    )
    result = system.run(32, FaultScript([
        Injection(fault_time(system), victim, CrashFault()),
    ]))
    verdict = btr_verdict(result, R_us=system.budget.total_us)
    assert verdict.holds, (
        domain,
        [(v.flow, v.period_index, v.status) for v in verdict.violations[:4]],
    )
    for node, fault_set in result.final_fault_sets.items():
        if node != victim:
            assert fault_set <= {victim}, (domain, node, sorted(fault_set))


def test_power_grid_validation():
    g = power_grid_workload(n_feeders=5)
    g.validate()
    assert len([s for s in g.sinks if s.startswith("breaker")]) == 5
    with pytest.raises(ValueError):
        power_grid_workload(n_feeders=0)
