"""Tests for the simulated signature scheme and cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import (
    AuthenticatedStatement,
    CryptoCosts,
    KeyDirectory,
    Signature,
    SignatureError,
    canonical_bytes,
    digest,
)


@pytest.fixture
def directory():
    d = KeyDirectory(master_seed=7)
    for node in ("a", "b", "c"):
        d.register(node)
    return d


def test_sign_verify_roundtrip(directory):
    payload = {"flow": "f1", "value": 42, "period": 3}
    sig = directory.sign("a", payload)
    assert directory.verify(payload, sig)


def test_tampered_payload_rejected(directory):
    payload = {"value": 42}
    sig = directory.sign("a", payload)
    assert not directory.verify({"value": 43}, sig)


def test_wrong_signer_rejected(directory):
    payload = {"value": 42}
    sig = directory.sign("a", payload)
    claimed = Signature(signer="b", tag=sig.tag)
    assert not directory.verify(payload, claimed)


def test_unknown_signer_cannot_sign(directory):
    with pytest.raises(SignatureError):
        directory.sign("ghost", {"x": 1})


def test_unknown_signer_never_verifies(directory):
    sig = Signature(signer="ghost", tag="00" * 32)
    assert not directory.verify({"x": 1}, sig)


def test_forged_signature_rejected(directory):
    payload = {"accused": "b", "fault": "commission"}
    forged = directory.forge("c", payload)
    assert forged.signer == "c"
    assert not directory.verify(payload, forged)


def test_register_is_idempotent(directory):
    payload = {"x": 1}
    sig = directory.sign("a", payload)
    directory.register("a")
    assert directory.verify(payload, sig)


def test_keys_deterministic_across_directories():
    d1 = KeyDirectory(master_seed=5)
    d2 = KeyDirectory(master_seed=5)
    d1.register("n")
    d2.register("n")
    payload = {"v": 9}
    assert d2.verify(payload, d1.sign("n", payload))


def test_different_master_seeds_do_not_cross_verify():
    d1 = KeyDirectory(master_seed=5)
    d2 = KeyDirectory(master_seed=6)
    d1.register("n")
    d2.register("n")
    payload = {"v": 9}
    assert not d2.verify(payload, d1.sign("n", payload))


def test_canonical_bytes_is_key_order_independent():
    assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})


def test_canonical_bytes_rejects_exotic_objects():
    with pytest.raises(TypeError):
        canonical_bytes({"x": object()})


@given(st.dictionaries(st.text(max_size=8),
                       st.integers() | st.text(max_size=8), max_size=5))
def test_property_any_json_payload_roundtrips(payload):
    d = KeyDirectory()
    d.register("n")
    sig = d.sign("n", payload)
    assert d.verify(payload, sig)


def test_digest_stable_and_sensitive():
    assert digest({"a": 1}) == digest({"a": 1})
    assert digest({"a": 1}) != digest({"a": 2})


def test_authenticated_statement(directory):
    stmt = AuthenticatedStatement.make(directory, "b", {"claim": "late"})
    assert stmt.signer == "b"
    assert stmt.valid(directory)
    assert stmt.wire_bits() > Signature.WIRE_BITS


def test_crypto_costs_scaling():
    costs = CryptoCosts(sign_us=100, verify_us=200, hash_us=10)
    half = costs.scaled(0.5)
    assert half.sign_us == 50 and half.verify_us == 100
    with pytest.raises(ValueError):
        costs.scaled(0)
