"""Tests for the detector logic: checking, timing windows, blame."""

import pytest

from repro.core.detector import (
    BlameTracker,
    OK,
    SELF_INCRIMINATING,
    SUSPICIOUS_ARRIVAL,
    TimingPolicy,
    build_output_statement,
    run_check,
)
from repro.core.evidence import input_digest, make_declaration
from repro.crypto import AuthenticatedStatement, KeyDirectory
from repro.workload import compute_output


@pytest.fixture
def directory():
    d = KeyDirectory(master_seed=11)
    for n in ("r0", "r1", "r2", "chk", "w1", "w2", "bad"):
        d.register(n)
    return d


def replica_stmt(directory, signer, task, period, value, inputs):
    payload = build_output_statement(
        task=task, instance=f"{task}#{signer}", period=period, value=value,
        input_values=inputs, send_offset=10,
    )
    return AuthenticatedStatement.make(directory, signer, payload)


REPLICAS = ["t#r0", "t#r1"]


def test_all_agree_forwards_primary(directory):
    correct = compute_output("t", 0, [1, 2])
    stmts = {
        "t#r0": replica_stmt(directory, "r0", "t", 0, correct, [1, 2]),
        "t#r1": replica_stmt(directory, "r1", "t", 0, correct, [1, 2]),
    }
    outcome = run_check("t", 0, REPLICAS, stmts, [1, 2])
    assert outcome.forward_value == correct
    assert outcome.forward_source == "t#r0"
    assert not outcome.convicted and not outcome.missing
    assert not outcome.recomputed  # agreement skips the re-execution


def test_primary_missing_uses_other_replica(directory):
    correct = compute_output("t", 0, [1, 2])
    stmts = {"t#r1": replica_stmt(directory, "r1", "t", 0, correct, [1, 2])}
    outcome = run_check("t", 0, REPLICAS, stmts, [1, 2])
    assert outcome.forward_value == correct
    assert outcome.forward_source == "t#r1"
    assert outcome.missing == ["t#r0"]


def test_nothing_arrived(directory):
    outcome = run_check("t", 0, REPLICAS, {}, [1, 2])
    assert outcome.forward_value is None
    assert outcome.missing == REPLICAS


def test_disagreement_convicts_wrong_replica(directory):
    correct = compute_output("t", 0, [1, 2])
    stmts = {
        "t#r0": replica_stmt(directory, "r0", "t", 0, correct ^ 1, [1, 2]),
        "t#r1": replica_stmt(directory, "r1", "t", 0, correct, [1, 2]),
    }
    outcome = run_check("t", 0, REPLICAS, stmts, [1, 2])
    assert outcome.recomputed
    assert outcome.reference == correct
    assert outcome.convicted == ["t#r0"]
    assert outcome.investigate == []
    # The fast path still forwarded the primary's (wrong) value — BTR
    # semantics: briefly-wrong outputs, bounded by the mode switch.
    assert outcome.forward_value == correct ^ 1


def test_digest_mismatch_triggers_investigation(directory):
    # r0 computed on different inputs (claims digest over [9, 9]).
    v0 = compute_output("t", 0, [9, 9])
    v1 = compute_output("t", 0, [1, 2])
    stmts = {
        "t#r0": replica_stmt(directory, "r0", "t", 0, v0, [9, 9]),
        "t#r1": replica_stmt(directory, "r1", "t", 0, v1, [1, 2]),
    }
    outcome = run_check("t", 0, REPLICAS, stmts, [1, 2])
    assert outcome.convicted == []
    assert outcome.investigate == ["t#r0"]


def test_disagreement_without_inputs_investigates(directory):
    correct = compute_output("t", 0, [1, 2])
    stmts = {
        "t#r0": replica_stmt(directory, "r0", "t", 0, correct, [1, 2]),
        "t#r1": replica_stmt(directory, "r1", "t", 0, correct ^ 5, [1, 2]),
    }
    outcome = run_check("t", 0, REPLICAS, stmts, own_input_values=None)
    assert not outcome.convicted
    assert outcome.investigate == ["t#r1"]  # disagrees with forwarded value


def test_three_replicas_multiple_convictions(directory):
    replicas = ["t#r0", "t#r1", "t#r2"]
    correct = compute_output("t", 0, [7])
    stmts = {
        "t#r0": replica_stmt(directory, "r0", "t", 0, correct ^ 2, [7]),
        "t#r1": replica_stmt(directory, "r1", "t", 0, correct, [7]),
        "t#r2": replica_stmt(directory, "r2", "t", 0, correct ^ 4, [7]),
    }
    outcome = run_check("t", 0, replicas, stmts, [7])
    assert set(outcome.convicted) == {"t#r0", "t#r2"}


# ------------------------------------------------------------------- timing


class _Flow:
    def __init__(self, name, src):
        self.name = name
        self.src = src


class _Slot:
    finish = 1_000


class PlanStub:
    """Minimal plan: one task-produced flow copy plus a source flow."""

    def __init__(self):
        self.augmented = type("G", (), {})()
        self.augmented.flows = [_Flow("f@r0", "t#c"), _Flow("sens@r0", "s")]
        self.augmented.tasks = {"t#c": object()}
        self.schedule = type("S", (), {
            "slot_for": staticmethod(lambda inst: _Slot()
                                     if inst == "t#c" else None),
        })()
        self.routes = {"f@r0": ["a", "b"]}

    def planned_arrival(self, flow):
        return 1_400 if flow == "f@r0" else None


def test_timing_judgement_ok():
    policy = TimingPolicy(slack_us=200, arrival_slack_us=300)
    plan = PlanStub()
    assert policy.judge(plan, "f", "f@r0", claimed_send_offset=1_100,
                        actual_arrival_offset=1_500) == OK


def test_timing_self_incriminating():
    policy = TimingPolicy(slack_us=200)
    plan = PlanStub()
    assert policy.judge(plan, "f", "f@r0", claimed_send_offset=5_000,
                        actual_arrival_offset=5_400) == SELF_INCRIMINATING


def test_timing_suspicious_arrival():
    policy = TimingPolicy(slack_us=200, arrival_slack_us=300)
    plan = PlanStub()
    # Claimed send time fine, but arrival way past the deadline.
    assert policy.judge(plan, "f", "f@r0", claimed_send_offset=1_050,
                        actual_arrival_offset=9_000) == SUSPICIOUS_ARRIVAL


def test_timing_source_flow_window_is_period_start():
    policy = TimingPolicy(slack_us=200)
    plan = PlanStub()
    assert policy.send_window(plan, "sens") == (-200, 200)


def test_timing_unknown_flow_has_no_window():
    policy = TimingPolicy()
    plan = PlanStub()
    assert policy.send_window(plan, "ghost") is None
    assert policy.judge(plan, "ghost", "ghost", 0, 0) == OK


# -------------------------------------------------------------------- blame


def test_blame_attribution_basic(directory):
    tracker = BlameTracker(slot_threshold=3, min_declarers=2)
    for period, declarer in ((1, "w1"), (2, "w1"), (1, "w2")):
        tracker.add_declaration(make_declaration(
            directory, declarer, ["bad", declarer], "f", period, 0))
    assert tracker.charges_against("bad") == 3
    assert tracker.newly_attributable() == ["bad"]
    # Sticky: not reported twice.
    assert tracker.newly_attributable() == []


def test_blame_single_declarer_never_attributes(directory):
    tracker = BlameTracker(slot_threshold=2, min_declarers=2)
    for period in range(10):
        tracker.add_declaration(make_declaration(
            directory, "w1", ["bad", "w1"], "f", period, 0))
    assert tracker.newly_attributable() == []


def test_blame_declarer_not_charged_by_own_declaration(directory):
    tracker = BlameTracker()
    tracker.add_declaration(make_declaration(
        directory, "w1", ["bad", "w1"], "f", 1, 0))
    assert tracker.charges_against("w1") == 0
    assert tracker.charges_against("bad") == 1


def test_blame_slander_cannot_convict(directory):
    # "bad" floods declarations against w1's paths; w1 stays safe because
    # all charges come from a single declarer.
    tracker = BlameTracker(slot_threshold=2, min_declarers=2)
    for period in range(5):
        tracker.add_declaration(make_declaration(
            directory, "bad", ["w1", "bad"], "f", period, 0))
    assert tracker.newly_attributable() == []


def test_blame_supporting_declarations(directory):
    tracker = BlameTracker()
    decls = [
        make_declaration(directory, "w1", ["bad", "w1"], "f", 1, 0),
        make_declaration(directory, "w2", ["other", "w2"], "f", 1, 0),
    ]
    support = tracker.supporting_declarations("bad", decls)
    assert len(support) == 1 and support[0].signer == "w1"


def test_blame_threshold_validation():
    with pytest.raises(ValueError):
        BlameTracker(slot_threshold=0)


def test_blame_single_adjacency_withholds_for_live_nodes(directory):
    """Charges all consistent with one link + the node demonstrably alive
    => withhold (it may be the link, not the node)."""
    tracker = BlameTracker(slot_threshold=2, min_declarers=2,
                           liveness=lambda n: True)
    for period, declarer in ((1, "w1"), (1, "w2"), (2, "w1")):
        tracker.add_declaration(make_declaration(
            directory, declarer, ["bad", "chk", declarer], "f", period, 0))
    # All paths have "bad" adjacent only to "chk".
    assert tracker.charges_against("bad") >= 2
    assert tracker.newly_attributable() == []


def test_blame_single_adjacency_escalates_when_sustained(directory):
    """The link excuse is not permanent: charges spanning many periods
    escalate to attribution even for a live node. ("chk", the common
    neighbour, also declares — charging only "bad" — which is what makes
    "bad" strictly dominant, as in the real ring scenarios.)"""
    tracker = BlameTracker(slot_threshold=2, min_declarers=2,
                           liveness=lambda n: True)
    for period in range(6):  # span >= slot_threshold + 2 periods
        tracker.add_declaration(make_declaration(
            directory, "chk", ["bad", "chk"], "f", period, 0))
        tracker.add_declaration(make_declaration(
            directory, "w1", ["bad", "chk", "w1"], "f", period, 0))
    assert tracker.newly_attributable() == ["bad"]


def test_blame_dead_node_needs_extra_slots_on_single_adjacency(directory):
    """A silent single-adjacency candidate gets the patience window (its
    life signal may be in flight), then is attributed. The shape mirrors
    a dead node whose traffic all routed via one neighbour ("chk"): the
    neighbour's own declarations (charging only the dead node) are what
    break the dominance tie."""
    tracker = BlameTracker(slot_threshold=2, min_declarers=2,
                           liveness=lambda n: False)
    tracker.add_declaration(make_declaration(
        directory, "chk", ["bad", "chk"], "f", 1, 0))
    tracker.add_declaration(make_declaration(
        directory, "w1", ["bad", "chk", "w1"], "f", 1, 0))
    tracker.add_declaration(make_declaration(
        directory, "chk", ["bad", "chk"], "f", 2, 0))
    # Threshold (2 slots, 2 declarers) met; patience (threshold+2) not.
    assert tracker.charges_against("bad") == 3
    assert tracker.newly_attributable() == []
    tracker.add_declaration(make_declaration(
        directory, "chk", ["bad", "chk"], "f", 3, 0))
    assert tracker.newly_attributable() == ["bad"]


def test_blame_multi_adjacency_attributes_immediately(directory):
    """Charges via two distinct adjacencies cannot be one link."""
    tracker = BlameTracker(slot_threshold=2, min_declarers=2,
                           liveness=lambda n: True)
    tracker.add_declaration(make_declaration(
        directory, "w1", ["x", "bad", "w1"], "f", 1, 0))
    tracker.add_declaration(make_declaration(
        directory, "w2", ["y", "bad", "w2"], "f", 1, 0))
    assert tracker.newly_attributable() == ["bad"]


def test_blame_suspected_links(directory):
    tracker = BlameTracker(slot_threshold=2, min_declarers=2,
                           liveness=lambda n: True)
    for period, declarer in ((1, "w1"), (1, "w2"), (2, "w1")):
        tracker.add_declaration(make_declaration(
            directory, declarer, ["bad", "chk", declarer], "f", period, 0))
    assert tracker.suspected_links("bad") == {("bad", "chk")}
    assert tracker.suspected_links("nobody") == set()


def test_blame_reset_clears_liveness_fallback(directory):
    tracker = BlameTracker()
    tracker.add_declaration(make_declaration(
        directory, "w1", ["bad", "w1"], "f", 1, 0))
    assert "w1" in tracker.seen_declarers
    tracker.reset_charges()
    assert tracker.seen_declarers == set()
    assert tracker.charges_against("bad") == 0
