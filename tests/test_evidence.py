"""Tests for evidence records, validation, and the distribution log."""

import pytest

from repro.core.evidence import (
    ATTRIBUTION,
    COMMISSION,
    EQUIVOCATION,
    Evidence,
    EvidenceLog,
    EvidenceValidator,
    TIMING,
    input_digest,
    make_declaration,
)
from repro.crypto import AuthenticatedStatement, KeyDirectory
from repro.workload import compute_output


@pytest.fixture
def directory():
    d = KeyDirectory(master_seed=3)
    for n in ("det", "bad", "up", "w1", "w2", "w3"):
        d.register(n)
    return d


@pytest.fixture
def validator(directory):
    return EvidenceValidator(directory)


def output_stmt(directory, signer, task="t", period=5, value=None,
                inputs=(1, 2), offset=100):
    correct = compute_output(task, period, list(inputs))
    payload = {
        "type": "output", "task": task, "instance": f"{task}#r1",
        "period": period, "value": value if value is not None else correct,
        "input_digest": input_digest(list(inputs)),
        "send_offset": offset,
    }
    return AuthenticatedStatement.make(directory, signer, payload)


def fwd_stmt(directory, signer, flow, period, value, offset=50):
    return AuthenticatedStatement.make(directory, signer, {
        "type": "fwd", "flow": flow, "period": period, "value": value,
        "send_offset": offset,
    })


def commission_evidence(directory, value_delta=1, digest_inputs=(1, 2),
                        supplied_inputs=(1, 2)):
    """Evidence accusing 'bad' of a wrong output for inputs (1, 2)."""
    correct = compute_output("t", 5, list(digest_inputs))
    wrong = correct + value_delta
    out = AuthenticatedStatement.make(directory, "bad", {
        "type": "output", "task": "t", "instance": "t#r1", "period": 5,
        "value": wrong, "input_digest": input_digest(list(digest_inputs)),
        "send_offset": 100,
    })
    ins = [fwd_stmt(directory, "up", f"f{i}", 5, v)
           for i, v in enumerate(supplied_inputs)]
    return Evidence.make(directory, COMMISSION, "bad", "det", 1234,
                         [out] + ins)


# --------------------------------------------------------------- commission


def test_valid_commission_evidence(directory, validator):
    ev = commission_evidence(directory)
    assert validator.cheap_check(ev)
    assert validator.validate(ev)


def test_commission_with_correct_value_is_rejected(directory, validator):
    ev = commission_evidence(directory, value_delta=0)
    assert validator.cheap_check(ev)
    assert not validator.validate(ev)


def test_commission_digest_mismatch_protects_honest_replica(
        directory, validator):
    # Accused computed on inputs (9, 9) (equivocated upstream); detector
    # supplies inputs (1, 2). Digest mismatch => evidence invalid.
    ev = commission_evidence(directory, digest_inputs=(9, 9),
                             supplied_inputs=(1, 2))
    assert not validator.validate(ev)


def test_commission_needs_output_signed_by_accused(directory, validator):
    correct = compute_output("t", 5, [1, 2])
    out = output_stmt(directory, "up", value=correct + 1)  # wrong signer
    ins = [fwd_stmt(directory, "up", "f0", 5, 1),
           fwd_stmt(directory, "up", "f1", 5, 2)]
    ev = Evidence.make(directory, COMMISSION, "bad", "det", 0, [out] + ins)
    assert not validator.validate(ev)


def test_commission_rejects_cross_period_inputs(directory, validator):
    correct = compute_output("t", 5, [1, 2])
    out = output_stmt(directory, "bad", value=correct + 1)
    ins = [fwd_stmt(directory, "up", "f0", 5, 1),
           fwd_stmt(directory, "up", "f1", 6, 2)]  # wrong period
    ev = Evidence.make(directory, COMMISSION, "bad", "det", 0, [out] + ins)
    assert not validator.validate(ev)


# ------------------------------------------------------------- equivocation


def test_valid_equivocation_evidence(directory, validator):
    a = fwd_stmt(directory, "bad", "f0", 3, 111)
    b = fwd_stmt(directory, "bad", "f0", 3, 222)
    ev = Evidence.make(directory, EQUIVOCATION, "bad", "det", 0, [a, b])
    assert validator.validate(ev)


def test_equivocation_same_value_rejected(directory, validator):
    a = fwd_stmt(directory, "bad", "f0", 3, 111)
    b = fwd_stmt(directory, "bad", "f0", 3, 111)
    ev = Evidence.make(directory, EQUIVOCATION, "bad", "det", 0, [a, b])
    assert not validator.validate(ev)


def test_equivocation_different_period_rejected(directory, validator):
    a = fwd_stmt(directory, "bad", "f0", 3, 111)
    b = fwd_stmt(directory, "bad", "f0", 4, 222)
    ev = Evidence.make(directory, EQUIVOCATION, "bad", "det", 0, [a, b])
    assert not validator.validate(ev)


def test_equivocation_statements_must_be_by_accused(directory, validator):
    a = fwd_stmt(directory, "bad", "f0", 3, 111)
    b = fwd_stmt(directory, "up", "f0", 3, 222)
    ev = Evidence.make(directory, EQUIVOCATION, "bad", "det", 0, [a, b])
    assert not validator.validate(ev)


# ------------------------------------------------------------------- timing


def test_timing_evidence_needs_period(directory):
    # Offset way past the end of a 5 ms period: grossly invalid.
    stmt = fwd_stmt(directory, "bad", "f0", 2, 42, offset=9_000)
    ev = Evidence.make(directory, TIMING, "bad", "det", 0, [stmt])
    no_period = EvidenceValidator(directory)
    assert not no_period.validate(ev)
    with_period = EvidenceValidator(directory, period=5_000,
                                    timing_slack=500)
    assert with_period.validate(ev)


def test_timing_offset_within_period_rejected(directory):
    # In-period offsets could be legitimate under some plan; only gross
    # violations are objective evidence.
    stmt = fwd_stmt(directory, "bad", "f0", 2, 42, offset=4_000)
    ev = Evidence.make(directory, TIMING, "bad", "det", 0, [stmt])
    validator = EvidenceValidator(directory, period=5_000, timing_slack=500)
    assert not validator.validate(ev)


def test_timing_negative_offset_is_gross(directory):
    stmt = fwd_stmt(directory, "bad", "f0", 2, 42, offset=-2_000)
    ev = Evidence.make(directory, TIMING, "bad", "det", 0, [stmt])
    validator = EvidenceValidator(directory, period=5_000, timing_slack=500)
    assert validator.validate(ev)


# -------------------------------------------------------------- attribution


def decl(directory, declarer, path, period):
    return make_declaration(directory, declarer, path, "f0", period, 0)


def test_valid_attribution(directory, validator):
    decls = [
        decl(directory, "w1", ["bad", "w1"], 1),
        decl(directory, "w2", ["bad", "w2"], 1),
        decl(directory, "w1", ["bad", "w1"], 2),
    ]
    ev = Evidence.make(directory, ATTRIBUTION, "bad", "det", 0, decls)
    assert validator.validate(ev)


def test_attribution_needs_two_declarers(directory, validator):
    decls = [decl(directory, "w1", ["bad", "w1"], p) for p in (1, 2, 3)]
    ev = Evidence.make(directory, ATTRIBUTION, "bad", "det", 0, decls)
    assert not validator.validate(ev)


def test_attribution_needs_threshold_slots(directory, validator):
    decls = [
        decl(directory, "w1", ["bad", "w1"], 1),
        decl(directory, "w2", ["bad", "w2"], 1),
    ]
    ev = Evidence.make(directory, ATTRIBUTION, "bad", "det", 0, decls)
    assert not validator.validate(ev)


def test_attribution_accused_must_be_on_every_path(directory, validator):
    decls = [
        decl(directory, "w1", ["bad", "w1"], 1),
        decl(directory, "w2", ["up", "w2"], 1),  # does not name accused
        decl(directory, "w1", ["bad", "w1"], 2),
    ]
    ev = Evidence.make(directory, ATTRIBUTION, "bad", "det", 0, decls)
    assert not validator.validate(ev)


def test_attribution_self_declarations_do_not_count(directory, validator):
    # The accused "declaring" through itself cannot support its own case,
    # nor can declarations *by* the accused support attributing it.
    decls = [
        decl(directory, "bad", ["bad", "w1"], 1),
        decl(directory, "w2", ["bad", "w2"], 1),
        decl(directory, "w2", ["bad", "w2"], 2),
    ]
    ev = Evidence.make(directory, ATTRIBUTION, "bad", "det", 0, decls)
    assert not validator.validate(ev)


# ----------------------------------------------------------- forged content


def test_forged_envelope_cheap_rejected(directory, validator):
    ev = commission_evidence(directory)
    forged = Evidence(
        kind=ev.kind, accused="up",  # tampered accusation
        detector=ev.detector, detected_at=ev.detected_at,
        statements=ev.statements, envelope=ev.envelope,
    )
    assert not validator.cheap_check(forged)


def test_unknown_kind_rejected(directory):
    with pytest.raises(ValueError):
        Evidence.make(directory, "gremlins", "bad", "det", 0, [])


# -------------------------------------------------------------- EvidenceLog


def test_log_accepts_and_forwards_valid_evidence(directory, validator):
    log = EvidenceLog("n0", validator)
    ev = commission_evidence(directory)
    decision = log.on_evidence(ev)
    assert decision.accept and decision.forward
    assert decision.implicate == "bad"
    assert log.accused_nodes() == {"bad"}


def test_log_dedups(directory, validator):
    log = EvidenceLog("n0", validator)
    ev = commission_evidence(directory)
    log.on_evidence(ev)
    again = log.on_evidence(ev)
    assert not again.accept and not again.forward
    assert again.reason == "duplicate"


def test_log_rejects_bad_signature_cheaply(directory, validator):
    log = EvidenceLog("n0", validator)
    ev = commission_evidence(directory)
    tampered = Evidence(
        kind=ev.kind, accused="up", detector=ev.detector,
        detected_at=ev.detected_at, statements=ev.statements,
        envelope=ev.envelope,
    )
    decision = log.on_evidence(tampered)
    assert decision.reason == "bad_signature"
    assert decision.implicate is None


def test_log_counts_slander_against_signer(directory, validator):
    log = EvidenceLog("n0", validator, slander_threshold=2)
    implicated = []
    for delta in (0, 0):  # correct value => unsupported accusations
        ev = commission_evidence(directory, value_delta=0)
        # Perturb detected_at to avoid dedup.
        ev = Evidence.make(directory, COMMISSION, "bad", "det",
                           len(implicated), list(ev.statements))
        decision = log.on_evidence(ev)
        implicated.append(decision.implicate)
    assert implicated[0] is None
    assert implicated[1] == "det"  # threshold reached: slanderer implicated


def test_log_handles_declarations(directory, validator):
    log = EvidenceLog("n0", validator)
    d = decl(directory, "w1", ["bad", "w1"], 1)
    decision = log.on_declaration(d)
    assert decision.accept and decision.forward
    dup = log.on_declaration(d)
    assert dup.reason == "duplicate"
    assert len(log.declarations) == 1


def attribution_evidence(directory, n_slots=3):
    decls = [decl(directory, "w1", ["bad", "w1"], p)
             for p in range(1, n_slots)]
    decls.append(decl(directory, "w2", ["bad", "w2"], 1))
    return Evidence.make(directory, ATTRIBUTION, "bad", "det", 0, decls)


def test_soft_rejected_record_is_reevaluated_after_switch(directory):
    # Regression: `on_evidence` used to mark records seen *before*
    # validation, so an ATTRIBUTION record soft-rejected mid-switch (the
    # validator's regime disagreed with the detector's) bounced off the
    # dedup gate as "duplicate" forever — despite the inline promise that
    # the caller may retry after its next switch. Only terminal verdicts
    # may stick now. We model the regime change the way the runtime does
    # across adopt(): the validator's notion of validity changes.
    validator = EvidenceValidator(directory, attribution_threshold=5)
    log = EvidenceLog("n0", validator)
    ev = attribution_evidence(directory, n_slots=3)

    first = log.on_evidence(ev)
    assert first.reason == "unsupported_soft"
    assert not first.accept and first.implicate is None  # not slander

    # After the mode switch the plans agree again (here: the validator
    # accepts the attribution). The retried record must be re-evaluated,
    # not deduplicated.
    validator.attribution_threshold = 3
    second = log.on_evidence(ev)
    assert second.reason == "valid"
    assert second.accept and second.implicate == "bad"
    assert log.accused_nodes() == {"bad"}

    # Acceptance is terminal: a third copy is now a duplicate.
    third = log.on_evidence(ev)
    assert third.reason == "duplicate"
    assert len(log.accepted) == 1


def test_soft_reject_does_not_feed_slander_count(directory):
    # Slander-threshold interaction with the dedup fix: plan-dependent
    # soft rejects must never charge the detector, no matter how many
    # times the same record is re-submitted and re-evaluated — otherwise
    # the retry loop the fix enables would convict an honest detector.
    validator = EvidenceValidator(directory, attribution_threshold=5)
    log = EvidenceLog("n0", validator, slander_threshold=2)
    ev = attribution_evidence(directory, n_slots=3)
    for _ in range(4):
        decision = log.on_evidence(ev)
        assert decision.reason == "unsupported_soft"
        assert decision.implicate is None
    assert log.invalid_counts == {}


def test_objective_unsupported_verdict_is_terminal(directory, validator):
    # An objectively unsupported record is slander-counted exactly once:
    # the terminal verdict marks it seen, so re-floods of the same record
    # are duplicates and cannot pump the slander count to the threshold.
    log = EvidenceLog("n0", validator, slander_threshold=2)
    ev = commission_evidence(directory, value_delta=0)  # correct value
    first = log.on_evidence(ev)
    assert first.reason == "unsupported"
    for _ in range(3):
        assert log.on_evidence(ev).reason == "duplicate"
    assert log.invalid_counts == {"det": 1}
