"""Online-runtime fast path: identical behaviour, cheaper execution.

The fast path (``repro.perf.fastpath`` plus the gated surgery in crypto/,
sim/ and core/runtime/) promises exactly one thing: the same run, byte for
byte, for less work. These tests pin that promise from four sides —

* determinism property: fastpath on/off x all trace modes produce the
  same milestone events, the same recovery timelines, the same event
  census, across seeds;
* verify-memo semantics: forged or invalid signatures are never cached,
  eviction is deterministic;
* canonicalization caching: one serialization per statement lifetime on
  the fast path, legacy recomputation when disabled;
* trace modes: reduced modes keep the census and refuse reconstruction
  they cannot support.
"""

import pytest

from repro import BTRConfig, BTRSystem
from repro.core.evidence.records import Evidence
from repro.crypto.authenticator import AuthenticatedStatement
from repro.crypto.signatures import KeyDirectory, Signature, canonical_bytes
from repro.faults.scenarios import stage
from repro.net import full_mesh_topology
from repro.obs import REQUIRED_KINDS
from repro.obs.recovery import reconstruct_timelines
from repro.perf.fastpath import VerifyMemo, trace_fingerprint
from repro.sim.trace import MILESTONE_KINDS, TRACE_MODES, Trace, MessageSent
from repro.workload import industrial_workload

N_PERIODS = 12


def run_scenario(seed: int, fastpath: bool, mode: str,
                 scenario: str = "single_commission"):
    system = BTRSystem(
        industrial_workload(),
        full_mesh_topology(7, bandwidth=1e8),
        BTRConfig(f=1, seed=seed, runtime_fastpath=fastpath,
                  trace_mode=mode),
    )
    system.prepare()
    scn = stage(scenario, system)
    result = system.run(N_PERIODS, adversary=scn.script,
                        link_script=scn.link_script)
    return system, result


def milestone_reprs(trace) -> list:
    return [repr(e) for e in trace if type(e) in MILESTONE_KINDS]


class TestDeterminismProperty:
    """Same seed => same observable run, whatever the knobs."""

    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_fastpath_and_trace_modes_agree(self, seed):
        _, off_full = run_scenario(seed, fastpath=False, mode="full")
        on_sys, on_full = run_scenario(seed, fastpath=True, mode="full")
        mi_sys, on_miles = run_scenario(seed, fastpath=True,
                                        mode="milestones")

        # Full-mode traces are byte-identical with the fast path on/off.
        assert (trace_fingerprint(on_full.trace)
                == trace_fingerprint(off_full.trace))

        # The milestone trace is exactly the milestone-kind subsequence
        # of the full trace — same events, same fields, same order.
        assert (milestone_reprs(on_miles.trace)
                == milestone_reprs(off_full.trace))

        # Recovery timelines (detect/convict/.../residual spans) agree.
        off_tl = [t.to_dict() for t in reconstruct_timelines(off_full)]
        mi_tl = [t.to_dict() for t in reconstruct_timelines(on_miles)]
        assert mi_tl == off_tl
        assert sum(t.phase_sum() for t in reconstruct_timelines(on_miles)) \
            == sum(t.phase_sum() for t in reconstruct_timelines(off_full))

        # The event census is mode-independent (tallies fill the gap)...
        assert on_miles.trace.kind_counts() == off_full.trace.kind_counts()
        # ...and the simulation itself executed the same event sequence.
        assert on_sys.sim.events_executed == mi_sys.sim.events_executed

    def test_counts_only_keeps_census_but_refuses_timelines(self):
        _, full = run_scenario(42, fastpath=True, mode="full")
        _, counts = run_scenario(42, fastpath=True, mode="counts-only")
        assert counts.trace.kind_counts() == full.trace.kind_counts()
        assert len(counts.trace) == 0
        with pytest.raises(ValueError, match="trace_mode"):
            reconstruct_timelines(counts)


class TestVerifyMemo:
    def directory(self) -> KeyDirectory:
        directory = KeyDirectory(master_seed=7, verify_memo=True)
        directory.register("n1")
        directory.register("n2")
        return directory

    def test_repeat_verification_hits_memo_once_per_statement(self):
        directory = self.directory()
        stmt = AuthenticatedStatement.make(directory, "n1", {"flow": "a", "period": 3})
        assert all(stmt.valid(directory) for _ in range(5))
        memo = directory.verify_memo
        assert memo.misses == 1
        assert memo.hits == 4
        # Only the miss performed HMAC work.
        assert directory.verifies == 1

    def test_forged_signature_is_never_cached(self):
        directory = self.directory()
        payload = {"flow": "a", "period": 3}
        forged = AuthenticatedStatement(
            statement=payload, signature=directory.forge("n1", payload))
        for _ in range(4):
            assert not forged.valid(directory)
        # Every attempt recomputed the HMAC; nothing was stored.
        assert directory.verifies == 4
        assert directory.verify_memo.hits == 0
        assert len(directory.verify_memo._valid) == 0

    def test_wrong_signer_tag_is_recomputed(self):
        directory = self.directory()
        stmt = AuthenticatedStatement.make(directory, "n1", {"flow": "b", "period": 1})
        assert stmt.valid(directory)  # miss: stores the honest statement
        assert stmt.valid(directory)  # hit
        # Same tag, different claimed signer: invalid, and stays invalid
        # on every retry even though the honest statement is cached.
        crossed = AuthenticatedStatement(
            statement=stmt.statement,
            signature=Signature(signer="n2", tag=stmt.signature.tag))
        assert not crossed.valid(directory)
        assert not crossed.valid(directory)
        assert directory.verify_memo.hits == 1  # only the honest repeat

    def test_eviction_is_deterministic_and_bounded(self):
        memo = VerifyMemo(max_entries=4)
        keys = [("n", f"tag{i}", f"d{i}") for i in range(5)]
        for key in keys:
            assert not memo.hit(key)
            memo.add_valid(key)
        # Inserting the 5th evicted the oldest half (insertion order).
        assert memo.evictions == 2
        assert len(memo._valid) <= memo.max_entries
        assert not memo.hit(keys[0])
        assert not memo.hit(keys[1])
        assert memo.hit(keys[4])

    def test_begin_run_clears_memo_and_counters(self):
        directory = self.directory()
        stmt = AuthenticatedStatement.make(directory, "n1", {"x": 1})
        assert stmt.valid(directory) and stmt.valid(directory)
        directory.begin_run()
        assert directory.signs == 0
        assert directory.verifies == 0
        assert directory.verify_memo.hits == 0
        assert len(directory.verify_memo._valid) == 0


class TestCanonicalizationCaching:
    def test_one_serialization_per_statement_lifetime(self, monkeypatch):
        import repro.crypto.authenticator as auth_mod

        calls = []

        def counting(payload):
            calls.append(payload)
            return canonical_bytes(payload)

        monkeypatch.setattr(auth_mod, "canonical_bytes", counting)
        directory = KeyDirectory(master_seed=7, verify_memo=True)
        directory.register("n1")
        stmt = AuthenticatedStatement.make(directory, "n1", {"flow": "f", "period": 9})
        assert len(calls) == 1  # serialized once, at make()
        # Everything downstream reuses the cached bytes/digest.
        stmt.wire_bits()
        stmt.wire_bits()
        stmt.payload_digest()
        stmt.payload_digest()
        assert stmt.valid(directory) and stmt.valid(directory)
        assert len(calls) == 1

    def test_legacy_verification_reserializes(self):
        directory = KeyDirectory(master_seed=7, verify_memo=False)
        directory.register("n1")
        stmt = AuthenticatedStatement.make(directory, "n1", {"flow": "f", "period": 9})
        # Without the memo, every verification performs the full legacy
        # HMAC (serialize + digest), so the off column of the E17 A/B
        # benchmark is a faithful baseline.
        for expected in (1, 2, 3):
            assert stmt.valid(directory)
            assert directory.verifies == expected

    def test_evidence_id_reuses_statement_digest(self, monkeypatch):
        import repro.crypto.authenticator as auth_mod

        directory = KeyDirectory(master_seed=7, verify_memo=True)
        for node in ("n1", "n2"):
            directory.register(node)
        s1 = AuthenticatedStatement.make(directory, "n1", {"flow": "f", "value": 1})
        s2 = AuthenticatedStatement.make(directory, "n1", {"flow": "f", "value": 2})

        calls = []

        def counting(payload):
            calls.append(payload)
            return canonical_bytes(payload)

        monkeypatch.setattr(auth_mod, "canonical_bytes", counting)
        evidence = Evidence.make(directory, kind="equivocation",
                                 accused="n1", detector="n2",
                                 detected_at=100, statements=[s1, s2])
        _ = evidence.evidence_id
        _ = evidence.evidence_id
        # The envelope is a fresh statement (one serialization); the
        # support digests and evidence_id all come from cached digests.
        assert len(calls) == 1


class TestTraceModes:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="trace mode"):
            Trace(mode="everything")
        with pytest.raises(ValueError, match="trace_mode"):
            BTRConfig(trace_mode="everything")
        assert TRACE_MODES == ("full", "milestones", "counts-only")

    def test_required_kinds_are_retained_in_milestones_mode(self):
        assert set(REQUIRED_KINDS) <= MILESTONE_KINDS
        trace = Trace(mode="milestones")
        for kind in REQUIRED_KINDS:
            assert trace.retains(kind)

    def test_tally_merges_into_census(self):
        trace = Trace(mode="milestones")
        trace.record(MessageSent(time=1, src="a", dst="b", kind="data",
                                 size_bits=8))
        trace.tally(MessageSent, 4)
        assert len(trace) == 0
        assert trace.count(MessageSent) == 5
        assert trace.kind_counts() == {"MessageSent": 5}
