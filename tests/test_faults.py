"""Tests for fault behaviours, patterns, and adversary scripting."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    CommissionFault,
    CrashFault,
    EquivocationFault,
    EvidenceFloodFault,
    FaultBehavior,
    FaultScript,
    Injection,
    OmissionFault,
    PacingAdversary,
    RandomAdversary,
    SingleFaultAdversary,
    TimingFault,
    all_patterns_up_to,
    children_of,
    is_ancestor,
    make_behavior,
    mode_id,
    parents_of,
    pattern,
    strategy_size,
)
from repro.sim import DeterministicRandom


# ---------------------------------------------------------------- behaviors


def test_correct_behavior_changes_nothing():
    b = FaultBehavior()
    assert not b.drops_message("f", 0, "n1")
    assert b.corrupt_value("t", 0, 42) == 42
    assert b.delay_send("f", 0) == 0
    assert not b.suppresses_detection()
    assert not b.fabricates_evidence()
    assert not b.is_crash()


def test_crash_marks_node():
    class AgentStub:
        class node:
            crashed = False

    b = CrashFault()
    agent = AgentStub()
    b.on_activate(agent)
    assert agent.node.crashed
    assert b.is_crash()


def test_omission_total_silence():
    b = OmissionFault(drop_probability=1.0)
    assert b.drops_message("any", 0, "n1")


def test_omission_targets_specific_flows():
    b = OmissionFault(target_flows=frozenset({"f1"}))
    assert b.drops_message("f1", 0, "n1")
    assert not b.drops_message("f2", 0, "n1")


def test_omission_probabilistic_with_rng():
    rng = DeterministicRandom(1)
    b = OmissionFault(drop_probability=0.5, rng=rng)
    results = [b.drops_message("f", i, "n1") for i in range(200)]
    assert 40 < sum(results) < 160  # roughly half


def test_commission_corrupts_value():
    b = CommissionFault()
    assert b.corrupt_value("t", 0, 42) != 42
    # Deterministic: same corruption each time (mask-based).
    assert b.corrupt_value("t", 0, 42) == b.corrupt_value("t", 0, 42)


def test_commission_targets_specific_tasks():
    b = CommissionFault(target_tasks=frozenset({"t1"}))
    assert b.corrupt_value("t1", 0, 42) != 42
    assert b.corrupt_value("t2", 0, 42) == 42


def test_timing_delays_without_corrupting():
    b = TimingFault(delay_us=700)
    assert b.delay_send("f", 0) == 700
    assert b.corrupt_value("t", 0, 42) == 42


def test_equivocation_splits_receivers():
    b = EquivocationFault(lied_to=frozenset({"n2"}))
    truth = b.corrupt_value("t", 0, 42, receiver="n1")
    lie = b.corrupt_value("t", 0, 42, receiver="n2")
    assert truth == 42 and lie != 42


def test_evidence_flood_flag():
    assert EvidenceFloodFault().fabricates_evidence()


def test_make_behavior_known_kinds():
    for kind in ("crash", "omission", "commission", "timing",
                 "equivocation", "evidence_flood"):
        assert make_behavior(kind).kind == kind
    with pytest.raises(ValueError):
        make_behavior("gremlins")


# ----------------------------------------------------------------- patterns


def test_mode_id_is_canonical():
    assert mode_id(pattern()) == "nominal"
    assert mode_id(pattern(["b", "a"])) == "faulty:a+b"
    assert mode_id(frozenset({"a", "b"})) == mode_id(frozenset({"b", "a"}))


def test_all_patterns_up_to_counts():
    nodes = ["a", "b", "c", "d"]
    patterns = all_patterns_up_to(nodes, 2)
    assert len(patterns) == 1 + 4 + 6
    assert patterns[0] == frozenset()
    # Parents precede children.
    for i, p in enumerate(patterns):
        for parent in parents_of(p):
            assert patterns.index(parent) < i


def test_strategy_size_matches_enumeration():
    nodes = [f"n{i}" for i in range(7)]
    for f in range(4):
        assert strategy_size(7, f) == len(all_patterns_up_to(nodes, f))


def test_parents_and_children():
    p = pattern(["a", "b"])
    assert set(parents_of(p)) == {frozenset({"a"}), frozenset({"b"})}
    kids = children_of(p, ["a", "b", "c", "d"])
    assert frozenset({"a", "b", "c"}) in kids
    assert all(len(k) == 3 for k in kids)


def test_is_ancestor():
    assert is_ancestor(pattern(["a"]), pattern(["a", "b"]))
    assert not is_ancestor(pattern(["c"]), pattern(["a", "b"]))


@given(st.sets(st.sampled_from(["a", "b", "c", "d", "e"]), max_size=3))
def test_property_mode_id_injective_on_small_sets(nodes):
    p = frozenset(nodes)
    # mode_id must round-trip: distinct patterns -> distinct ids.
    reconstructed = (frozenset() if mode_id(p) == "nominal"
                     else frozenset(mode_id(p)[len("faulty:"):].split("+")))
    assert reconstructed == p


# ---------------------------------------------------------------- adversary


def test_fault_script_sorts_and_rejects_double_injection():
    script = FaultScript([
        Injection(200, "b", CrashFault()),
        Injection(100, "a", CrashFault()),
    ])
    assert [i.node for i in script] == ["a", "b"]
    with pytest.raises(ValueError):
        FaultScript([
            Injection(1, "a", CrashFault()),
            Injection(2, "a", CrashFault()),
        ])


def test_single_fault_adversary_defaults_to_first_candidate():
    adv = SingleFaultAdversary(at=1000, kind="crash")
    script = adv.script(["n2", "n1"], DeterministicRandom(0))
    assert script.faulty_nodes == ["n1"]
    assert script.injections[0].time == 1000


def test_single_fault_adversary_validates_choice():
    adv = SingleFaultAdversary(at=0, node="ghost")
    with pytest.raises(ValueError):
        adv.script(["n1"], DeterministicRandom(0))


def test_pacing_adversary_spacing():
    adv = PacingAdversary(start=1000, interval=5000, k=3, kind="crash")
    script = adv.script(["n1", "n2", "n3", "n4"], DeterministicRandom(0))
    times = [i.time for i in script]
    assert times == [1000, 6000, 11000]
    assert len(set(script.faulty_nodes)) == 3


def test_pacing_adversary_needs_enough_victims():
    adv = PacingAdversary(start=0, interval=1, k=5)
    with pytest.raises(ValueError):
        adv.script(["n1", "n2"], DeterministicRandom(0))


def test_random_adversary_is_reproducible():
    adv = RandomAdversary(horizon=100_000, k=3)
    s1 = adv.script(["n1", "n2", "n3", "n4", "n5"], DeterministicRandom(9))
    s2 = adv.script(["n1", "n2", "n3", "n4", "n5"], DeterministicRandom(9))
    assert [(i.time, i.node, i.behavior.kind) for i in s1] == [
        (i.time, i.node, i.behavior.kind) for i in s2]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), k=st.integers(1, 4))
def test_property_random_adversary_respects_k_and_horizon(seed, k):
    adv = RandomAdversary(horizon=50_000, k=k)
    script = adv.script([f"n{i}" for i in range(6)],
                        DeterministicRandom(seed))
    assert len(script) == k
    assert len(set(script.faulty_nodes)) == k
    assert all(0 <= i.time <= 50_000 for i in script)


# -------------------------------------------- adversary determinism


def _script_signature_task(args):
    """Top-level so ProcessPoolExecutor can pickle it."""
    adversary_kind, seed = args
    from repro.faults import (
        PacingAdversary,
        RandomAdversary,
        script_signature,
    )
    from repro.sim import DeterministicRandom

    candidates = [f"n{i}" for i in range(6)]
    if adversary_kind == "random":
        adv = RandomAdversary(horizon=50_000, k=3)
    else:
        adv = PacingAdversary(start=10_000, interval=20_000, k=3)
    return script_signature(adv.script(candidates,
                                       DeterministicRandom(seed)))


@pytest.mark.parametrize("adversary_kind", ["random", "pacing"])
def test_adversary_identical_seeds_across_processes(adversary_kind):
    """Identical seeds yield identical scripts no matter which process
    builds them — the property the model checker's worker fan-out rests
    on."""
    from concurrent.futures import ProcessPoolExecutor

    local = [_script_signature_task((adversary_kind, seed))
             for seed in (7, 7, 11)]
    assert local[0] == local[1]
    if adversary_kind == "random":
        # Pacing's victims/times are seed-independent by design; only
        # the random adversary's structure varies with the seed.
        assert local[0] != local[2]
    try:
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_script_signature_task,
                                   [(adversary_kind, 7),
                                    (adversary_kind, 7),
                                    (adversary_kind, 11)]))
    except (OSError, ValueError, ImportError):
        pytest.skip("process pools unavailable in this environment")
    assert remote == local


@pytest.mark.parametrize("make", [
    lambda: RandomAdversary(horizon=50_000, k=3),
    lambda: PacingAdversary(start=10_000, interval=20_000, k=2),
    lambda: SingleFaultAdversary(at=30_000, kind="crash"),
])
def test_fault_script_round_trips_through_serialisation(make):
    from repro.faults import (
        script_from_dict,
        script_signature,
        script_to_dict,
    )

    candidates = [f"n{i}" for i in range(6)]
    script = make().script(candidates, DeterministicRandom(9))
    payload = script_to_dict(script)
    rebuilt = script_from_dict(payload, seed=9)
    assert script_signature(rebuilt) == script_signature(script)
    # Serialisation is stable: a round-tripped script re-serialises to
    # the same payload.
    assert script_to_dict(rebuilt) == payload


def test_script_from_dict_rejects_bad_payloads():
    from repro.faults import script_from_dict, script_to_dict

    script = SingleFaultAdversary(at=5_000, kind="crash").script(
        ["n0"], DeterministicRandom(1))
    payload = script_to_dict(script)
    with pytest.raises(ValueError):
        script_from_dict({**payload, "version": 99})
    with pytest.raises(ValueError):
        script_from_dict({"injections": payload["injections"]})


def test_random_adversary_dedupes_candidates_and_guards_faulty():
    """Duplicate candidate ids collapse to one victim slot, and nodes
    already compromised before the script are never re-injected."""
    adv = RandomAdversary(horizon=50_000, k=3)
    script = adv.script(["n1", "n1", "n2", "n2", "n3", "n4"],
                        DeterministicRandom(5))
    assert len(set(script.faulty_nodes)) == 3

    guarded = RandomAdversary(horizon=50_000, k=2,
                              already_faulty=("n1", "n2"))
    script = guarded.script(["n1", "n2", "n3", "n4"],
                            DeterministicRandom(5))
    assert set(script.faulty_nodes) <= {"n3", "n4"}

    with pytest.raises(ValueError, match="distinct un-compromised"):
        RandomAdversary(horizon=50_000, k=3,
                        already_faulty=("n1", "n2")).script(
            ["n1", "n1", "n2", "n3", "n4"], DeterministicRandom(5))


@pytest.mark.parametrize("method", ["spawn", "fork"])
@pytest.mark.parametrize("adversary_kind", ["random", "pacing"])
def test_adversary_determinism_under_spawn_and_fork(adversary_kind,
                                                    method):
    """Same seed → identical ``script_signature`` whichever start method
    spawned the worker (spawn re-imports, fork inherits — both must
    agree with the parent)."""
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable")
    local = _script_signature_task((adversary_kind, 7))
    try:
        with ProcessPoolExecutor(
                max_workers=2,
                mp_context=multiprocessing.get_context(method)) as pool:
            remote = list(pool.map(_script_signature_task,
                                   [(adversary_kind, 7)] * 2))
    except (OSError, ValueError, ImportError):
        pytest.skip("process pools unavailable in this environment")
    assert remote == [local, local]


def test_v2_payload_persists_params_and_rng_seed():
    """The serialised payload carries behaviour parameters and the RNG
    seed, so a rebuilt behaviour is the original, not just its kind."""
    from repro.faults import script_from_dict, script_to_dict

    script = FaultScript([
        Injection(10_000, "n1", OmissionFault(
            drop_probability=0.5, target_flows=frozenset({"flow_b"}),
            rng=DeterministicRandom(1234))),
        Injection(20_000, "n2", TimingFault(delay_us=7_500,
                                            fake_timestamp=True)),
    ])
    payload = script_to_dict(script)
    assert payload["version"] == 2
    omission, timing = payload["injections"]
    assert omission["params"] == {"drop_probability": 0.5,
                                  "target_flows": ["flow_b"]}
    assert omission["rng_seed"] == 1234
    assert timing["params"] == {"delay_us": 7_500,
                                "fake_timestamp": True}

    rebuilt = script_from_dict(payload)
    assert rebuilt.injections[0].behavior.drop_probability == 0.5
    assert rebuilt.injections[0].behavior.target_flows \
        == frozenset({"flow_b"})
    assert rebuilt.injections[0].behavior.rng.seed_value == 1234
    assert rebuilt.injections[1].behavior.delay_us == 7_500
    assert script_to_dict(rebuilt) == payload


def test_script_round_trip_replays_byte_identically():
    """A serialised + rebuilt script replays to a byte-identical trace —
    the fidelity contract the fuzzer's corpus rests on (a v1 payload
    only promised structural identity)."""
    from repro import BTRConfig, BTRSystem
    from repro.faults import script_from_dict, script_to_dict
    from repro.net import full_mesh_topology
    from repro.perf.fastpath import trace_fingerprint
    from repro.workload import pipeline_workload

    system = BTRSystem(pipeline_workload(),
                       full_mesh_topology(4, bandwidth=1e8),
                       BTRConfig(f=1))
    system.prepare()
    script = RandomAdversary(horizon=120_000, min_time=40_000, k=1,
                             kinds=("omission",)).script(
        system.compromisable_nodes(), DeterministicRandom(3))
    reference = system.run(n_periods=10, adversary=script)
    rebuilt = script_from_dict(script_to_dict(script))
    replayed = system.run(n_periods=10, adversary=rebuilt)
    assert trace_fingerprint(replayed.trace) \
        == trace_fingerprint(reference.trace)
