"""Tests for the coverage-guided fuzzer (``repro.fuzz`` / ``repro fuzz``).

All campaigns run the smallest config the placement rules admit —
``pipeline`` on ``fullmesh:4`` with f=1 — with tight bounds (few
generations, small batches) so the whole file stays in CI-smoke
territory. ``R_us=30_000`` deliberately under-provisions commission
recovery (~40–76 ms on this config), the knob every "must find"
campaign turns.
"""

import json
import subprocess
import sys

import pytest

from repro.core.runtime.config import BTRConfig
from repro.core.runtime.system import BTRSystem
from repro.fuzz import (
    FuzzParams,
    MutationSpace,
    artifact_name,
    canonical_script,
    check_corpus,
    load_corpus,
    mutate_script,
    run_fuzz_campaign,
    seed_scripts,
    write_corpus,
)
from repro.fuzz.fitness import fitness_vector
from repro.mc import replay_counterexample
from repro.net import full_mesh_topology
from repro.sim import DeterministicRandom
from repro.workload import pipeline_workload

META = {"workload": "pipeline", "topology": "fullmesh:4",
        "bandwidth": 1e8, "f": 1, "seed": 0}


def small_system(**config_kw):
    config = BTRConfig(f=1, trace_mode="milestones", **config_kw)
    system = BTRSystem(pipeline_workload(),
                       full_mesh_topology(4, bandwidth=META["bandwidth"]),
                       config)
    system.prepare()
    return system


def tiny_params(**kw):
    defaults = dict(kinds=("crash", "commission", "timing"), ticks=2,
                    generations=2, batch=4, elite=3, seed=7)
    defaults.update(kw)
    return FuzzParams(**defaults)


def run_tiny(params=None, **campaign_kw):
    return run_fuzz_campaign(pipeline_workload(),
                             full_mesh_topology(4,
                                                bandwidth=META["bandwidth"]),
                             BTRConfig(f=1), params or tiny_params(),
                             meta=dict(META), **campaign_kw)


def small_space(**kw):
    system = small_system()
    defaults = dict(kinds=("crash", "commission", "omission", "timing",
                           "equivocation", "evidence_flood",
                           "rogue_clock"),
                    window=(2.0, 3.0), max_injections=2)
    defaults.update(kw)
    return MutationSpace.from_system(system, **defaults)


# ------------------------------------------------------------ mutation


def test_seed_scripts_cover_kinds_and_ticks():
    space = small_space(kinds=("crash", "commission"))
    seeds = seed_scripts(space, ticks=2)
    assert len(seeds) == 4  # 2 kinds × 2 ticks
    kinds = {s["injections"][0]["kind"] for s in seeds}
    assert kinds == {"crash", "commission"}
    times = {s["injections"][0]["time"] for s in seeds}
    assert len(times) == 2
    lo, hi = space.window_us
    assert all(lo <= t <= hi for t in times)


def test_mutants_always_decode_and_respect_the_space():
    """Every mutant over a long random walk stays valid: decodable,
    inside the window, unique victims, bounded injection count."""
    from repro.faults import script_from_dict

    space = small_space()
    rng = DeterministicRandom(0)
    payload = seed_scripts(space, ticks=1)[0]
    lo, hi = space.window_us
    for step in range(200):
        payload = mutate_script(payload, space, rng.fork(f"s{step}"))
        script = script_from_dict(payload)  # raises if invalid
        assert 1 <= len(script) <= space.max_injections
        assert len(set(script.faulty_nodes)) == len(script)
        assert all(lo <= e["time"] <= hi
                   for e in payload["injections"])
        assert all(e["node"] in space.nodes
                   for e in payload["injections"])


def test_mutation_is_seed_deterministic():
    space = small_space()
    payload = seed_scripts(space, ticks=1)[0]
    a = mutate_script(payload, space, DeterministicRandom(0).fork("x"))
    b = mutate_script(payload, space, DeterministicRandom(0).fork("x"))
    c = mutate_script(payload, space, DeterministicRandom(0).fork("y"))
    assert canonical_script(a) == canonical_script(b)
    assert canonical_script(a) != canonical_script(c) or a == c


# ------------------------------------------------------------ fitness


def test_fitness_vector_orders_by_recovery():
    class T:
        def __init__(self, total, phases):
            self.total_us = total
            self.phases = phases

    calm = fitness_vector([T(10_000, {"detect": 10_000})], 30_000)
    bad = fitness_vector([T(40_000, {"detect": 40_000})], 30_000)
    assert bad > calm
    assert bad[-1] == 10_000  # past the bound by 10 ms
    assert calm[-1] == -20_000
    assert fitness_vector([], 30_000) == (0, 0, 0, -30_000)


# ------------------------------------------------------------ campaign


def test_campaign_finds_minimises_and_confirms_at_tight_R():
    report, stats = run_tiny(tiny_params(R_us=30_000))
    assert report["found"]
    assert report["violating_scripts"] > 0
    for artifact in report["counterexamples"]:
        assert artifact["replay_confirmed"]
        assert artifact["replay_digest"]
        assert len(artifact["fault_script"]["injections"]) == 1
        assert any(v["invariant"] == "recovery-bound"
                   for v in artifact["violations"])
    assert stats.runs == report["evaluated"]


def test_campaign_clean_at_planned_budget():
    report, _ = run_tiny(tiny_params())
    assert report["params"]["R_us"] == report["budget_us"]
    assert not report["found"]
    assert report["violating_scripts"] == 0
    assert report["counterexamples"] == []
    # The search still did real work: coverage and fitness are non-void.
    assert report["coverage"]
    assert report["best_fitness"][0] > 0


def test_campaign_report_byte_identical_across_workers():
    params = tiny_params(R_us=30_000)
    serial, _ = run_tiny(params)
    parallel, stats = run_tiny(FuzzParams(**{**params.__dict__,
                                             "workers": 2}))
    if stats.pool_fallback:
        pytest.skip("process pools unavailable in this environment")
    assert json.dumps(serial, sort_keys=True) \
        == json.dumps(parallel, sort_keys=True)


def test_minimised_counterexample_still_violates_parent_invariant():
    """The shrunk script must break the same invariant that killed its
    parent, re-checked through a fresh replay."""
    report, _ = run_tiny(tiny_params(R_us=30_000))
    system = small_system()
    for artifact in report["counterexamples"]:
        violations, _ = replay_counterexample(system, artifact)
        observed = {v.invariant for v in violations}
        recorded = {v["invariant"] for v in artifact["violations"]}
        assert recorded <= observed


def test_campaign_coverage_guides_survival():
    """Coverage keys accumulate monotonically and the report's history
    accounts for every generation."""
    report, _ = run_tiny(tiny_params(R_us=30_000))
    assert len(report["generations"]) == 3  # seeds + 2 generations
    assert report["generations"][0]["new_coverage"] > 0
    assert sum(g["new_coverage"] for g in report["generations"]) \
        == len(report["coverage"])
    assert any(key.startswith("switch:") for key in report["coverage"])
    assert any(key.startswith("milestone:")
               for key in report["coverage"])
    assert any(key.startswith("verdict:recovery-bound")
               for key in report["coverage"])


# ------------------------------------------------------------ corpus


def _corpus_check_digests(corpus_dir: str) -> list:
    """Corpus replay digests computed in a fresh interpreter."""
    code = f"""
import json
from repro.core.runtime.config import BTRConfig
from repro.core.runtime.system import BTRSystem
from repro.fuzz import check_corpus
from repro.net import full_mesh_topology
from repro.workload import pipeline_workload

def build(meta):
    system = BTRSystem(pipeline_workload(),
                       full_mesh_topology(4, bandwidth=meta["bandwidth"]),
                       BTRConfig(f=meta["f"], seed=meta["seed"],
                                 trace_mode="milestones"))
    system.prepare()
    return system

report = check_corpus({corpus_dir!r}, build)
print(json.dumps([(e["name"], e["digest"], e["confirmed"],
                   e["digest_match"]) for e in report["entries"]]))
"""
    import os

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo, "src")
    out = subprocess.run([sys.executable, "-c", code],
                         capture_output=True, text=True, env=env,
                         cwd=repo)
    assert out.returncode == 0, out.stderr
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_corpus_round_trip_and_cross_process_replay(tmp_path):
    """Corpus entries are content-named, reload structurally intact, and
    replay byte-identically (same digest, same verdict) in two separate
    fresh processes."""
    report, _ = run_tiny(tiny_params(R_us=30_000))
    confirmed = [a for a in report["counterexamples"]
                 if a["replay_confirmed"]]
    assert confirmed
    corpus_dir = str(tmp_path / "corpus")
    paths = write_corpus(corpus_dir, confirmed)
    assert len(paths) == len(confirmed)
    entries = load_corpus(corpus_dir)
    assert [name for name, _ in entries] \
        == sorted(artifact_name(a) for a in confirmed)

    first = _corpus_check_digests(corpus_dir)
    second = _corpus_check_digests(corpus_dir)
    assert first == second
    for name, digest, ok, digest_match in first:
        assert ok, f"{name} no longer reproduces its verdict"
        assert digest_match, f"{name} replay digest drifted"


def test_corpus_check_flags_a_stale_entry(tmp_path):
    """An entry whose recorded verdict no longer reproduces (here: its
    bound loosened to the planned budget) must fail the gate."""
    report, _ = run_tiny(tiny_params(R_us=30_000))
    artifact = dict(report["counterexamples"][0])
    artifact["R_us"] = report["budget_us"]  # violation disappears
    corpus_dir = str(tmp_path / "corpus")
    write_corpus(corpus_dir, [artifact])
    check = check_corpus(corpus_dir, lambda meta: small_system())
    assert not check["ok"]
    assert check["failed"] == 1
    assert not check["entries"][0]["confirmed"]


def test_corpus_write_is_idempotent(tmp_path):
    report, _ = run_tiny(tiny_params(R_us=30_000))
    confirmed = [a for a in report["counterexamples"]
                 if a["replay_confirmed"]]
    corpus_dir = str(tmp_path / "corpus")
    first = write_corpus(corpus_dir, confirmed)
    before = {p: open(p).read() for p in first}
    second = write_corpus(corpus_dir, confirmed)
    assert first == second
    assert {p: open(p).read() for p in second} == before


# ------------------------------------------------------------ checked-in corpus


def test_checked_in_corpus_replays():
    """Every committed ``corpus/`` entry still reproduces its recorded
    verdict and digest — the same gate CI runs via
    ``repro fuzz corpus-check``."""
    import os

    corpus_dir = os.path.join(os.path.dirname(__file__), "..", "corpus")
    if not os.path.isdir(corpus_dir):
        pytest.skip("no checked-in corpus")
    entries = load_corpus(corpus_dir)
    assert entries, "checked-in corpus must not be empty"
    check = check_corpus(corpus_dir, lambda meta: small_system(),
                         entries=entries)
    assert check["ok"], check
