"""Tests for the AST determinism linter (``tools.lint``).

Each rule is exercised against minimal sources at paths inside and
outside the restricted layers, plus the suppression pragma and the CLI
entry point's exit codes.
"""

import textwrap
from pathlib import Path

from tools.lint import (
    ALL_RULES,
    lint_paths,
    lint_source,
    main,
    suppressed_rules,
)

SIM_PATH = "src/repro/sim/example.py"
CORE_PATH = "src/repro/core/runtime/example.py"
ANALYSIS_PATH = "src/repro/analysis/example.py"


def rules_hit(source, path=SIM_PATH):
    source = textwrap.dedent(source)
    return sorted({v.rule for v in lint_source(source, path, ALL_RULES)})


# ---------------------------------------------------------------- wallclock


def test_wallclock_flags_time_calls():
    src = """\
        import time
        def now():
            return time.time()
    """
    assert rules_hit(src) == ["wallclock"]
    assert rules_hit(src, path=CORE_PATH) == ["wallclock"]


def test_wallclock_flags_perf_counter_and_datetime():
    assert rules_hit("import time\nt = time.perf_counter()\n") \
        == ["wallclock"]
    assert rules_hit("import datetime\nd = datetime.datetime.now()\n") \
        == ["wallclock"]
    assert rules_hit("from time import monotonic\n") == ["wallclock"]
    assert rules_hit("from datetime import datetime\n") == ["wallclock"]


def test_wallclock_scoped_to_restricted_layers():
    src = "import time\nt = time.time()\n"
    assert rules_hit(src, path=ANALYSIS_PATH) == []
    assert rules_hit(src, path="tools/example.py") == []


def test_wallclock_exempts_the_clock_facade():
    src = "import time\nt = time.monotonic()\n"
    assert rules_hit(src, path="src/repro/sim/time.py") == []
    assert rules_hit(src, path="src/repro/sim/clock.py") == []


def test_wallclock_ignores_relative_and_harmless_imports():
    assert rules_hit("from .time import now_us\n") == []
    assert rules_hit("from time import struct_time\n") == []
    assert rules_hit("import time\nz = time.timezone\n") == []


# ---------------------------------------------------------- unseeded-random


def test_global_random_flagged_in_restricted_layers():
    src = "import random\nx = random.randint(0, 1)\n"
    assert rules_hit(src) == ["unseeded-random"]
    assert rules_hit(src, path=ANALYSIS_PATH) == []


def test_numpy_global_random_flagged():
    assert rules_hit("import numpy as np\nx = np.random.rand()\n") \
        == ["unseeded-random"]


def test_from_random_import_flagged_but_relative_exempt():
    assert rules_hit("from random import choice\n") == ["unseeded-random"]
    # The engine's own facade: `from .random import DeterministicRandom`.
    assert rules_hit("from .random import DeterministicRandom\n") == []
    assert rules_hit(
        "import random\n", path="src/repro/sim/random.py") == []


# ------------------------------------------------------------ set-iteration


def test_set_literal_iteration_flagged_everywhere():
    src = "for x in {1, 2, 3}:\n    pass\n"
    assert rules_hit(src) == ["set-iteration"]
    assert rules_hit(src, path=ANALYSIS_PATH) == ["set-iteration"]


def test_set_call_keys_view_and_comprehensions_flagged():
    assert rules_hit("for x in set(items):\n    pass\n") \
        == ["set-iteration"]
    assert rules_hit("for k in table.keys():\n    pass\n") \
        == ["set-iteration"]
    assert rules_hit("xs = [x for x in frozenset(items)]\n") \
        == ["set-iteration"]
    assert rules_hit("xs = {x for x in set(a) - b}\n") == ["set-iteration"]


def test_sorted_iteration_not_flagged():
    assert rules_hit("for x in sorted({1, 2, 3}):\n    pass\n") == []
    assert rules_hit("for x in items:\n    pass\n") == []


# ----------------------------------------------------------------- float-eq


def test_float_literal_equality_flagged():
    assert rules_hit("ok = deadline == 1.5\n") == ["float-eq"]
    assert rules_hit("ok = 0.25 != jitter\n") == ["float-eq"]


def test_int_equality_and_float_ordering_not_flagged():
    assert rules_hit("ok = deadline == 1\n") == []
    assert rules_hit("ok = deadline <= 1.5\n") == []


# ------------------------------------------------------------------ pragmas


def test_pragma_parses_rule_lists_and_star():
    assert suppressed_rules("x = 1  # lint: ignore[wallclock]") \
        == {"wallclock"}
    assert suppressed_rules("x = 1  # lint: ignore[a, b]") == {"a", "b"}
    assert suppressed_rules("x = 1  # lint: ignore[*]") == {"*"}
    assert suppressed_rules("x = 1  # plain comment") is None


def test_pragma_suppresses_only_named_rule():
    src = "import time\nt = time.time()  # lint: ignore[wallclock]\n"
    assert rules_hit(src) == []
    src = "import time\nt = time.time()  # lint: ignore[float-eq]\n"
    assert rules_hit(src) == ["wallclock"]
    src = "import time\nt = time.time()  # lint: ignore[*]\n"
    assert rules_hit(src) == []


# -------------------------------------------------------------- the engine


def test_syntax_error_reported_as_parse_error():
    assert rules_hit("def broken(:\n") == ["parse-error"]


def test_violation_str_is_grep_friendly():
    violation = lint_source("t = time.time()\n", SIM_PATH, ALL_RULES)[0]
    assert str(violation).startswith(f"{SIM_PATH}:1:")
    assert "wallclock" in str(violation)


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text("import time\nt = time.time()\n")
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "notes.txt").write_text("not python")
    violations = lint_paths([str(tmp_path)])
    assert [v.rule for v in violations] == ["wallclock"]
    assert violations[0].path.endswith("dirty.py")


def test_main_exit_codes(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text("import random\nx = random.random()\n")
    assert main([str(tmp_path)]) == 1
    assert "unseeded-random" in capsys.readouterr().out

    (pkg / "dirty.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "no violations" in capsys.readouterr().out


def test_main_rejects_missing_paths(capsys):
    assert main(["/no/such/path"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out


def test_shipped_tree_is_lint_clean():
    src = Path(__file__).resolve().parent.parent / "src"
    assert lint_paths([str(src)]) == []


def test_fastpath_module_is_in_lint_scope(tmp_path):
    """The online fast path lives in the determinism-critical layer: a
    wall-clock read or unseeded RNG sneaking into repro/perf/fastpath.py
    must be flagged (only perf/timing.py is sanctioned to read time)."""
    from tools.lint.rules import _in_restricted_layer

    assert _in_restricted_layer("src/repro/perf/fastpath.py")
    assert not _in_restricted_layer("src/repro/perf/timing.py")

    pkg = tmp_path / "repro" / "perf"
    pkg.mkdir(parents=True)
    (pkg / "fastpath.py").write_text(
        "import time\nstamp = time.monotonic()\n")
    violations = lint_paths([str(tmp_path)])
    assert [v.rule for v in violations] == ["wallclock"]


# ------------------------------------------- unsorted-node-iteration

MC_PATH = "src/repro/mc/example.py"
FAULTS_PATH = "src/repro/faults/example.py"


def test_unsorted_node_iteration_flags_dict_views():
    src = """\
        def merge(table):
            for node, state in table.items():
                print(node, state)
            return [v for v in table.values()]
    """
    assert rules_hit(src, path=MC_PATH) == ["unsorted-node-iteration"]
    assert rules_hit(src, path=FAULTS_PATH) == ["unsorted-node-iteration"]


def test_unsorted_node_iteration_accepts_sorted_views():
    src = """\
        def merge(table):
            for node, state in sorted(table.items()):
                print(node, state)
            return [table[k] for k in sorted(table)]
    """
    assert rules_hit(src, path=MC_PATH) == []


def test_unsorted_node_iteration_scope_and_pragma():
    src = "pairs = [v for v in table.values()]\n"
    # Outside the node-order-critical layers the rule stays silent.
    assert rules_hit(src, path=ANALYSIS_PATH) == []
    assert rules_hit(src, path=SIM_PATH) == []
    suppressed = ("pairs = [v for v in table.values()]"
                  "  # lint: ignore[unsorted-node-iteration]\n")
    assert rules_hit(suppressed, path=MC_PATH) == []


# --------------------------------------------- engine-schedule-bypass


def test_engine_schedule_bypass_flags_raw_calls():
    src = """\
        def handler(self, sim):
            sim.schedule(5, self.tick)
            self.sim.schedule(9, self.tock)
            self._sim.schedule(11, self.tack)
    """
    assert rules_hit(src, path=CORE_PATH) == ["engine-schedule-bypass"]
    assert rules_hit(src, path=MC_PATH) == ["engine-schedule-bypass"]
    assert rules_hit(src, path=FAULTS_PATH) == ["engine-schedule-bypass"]


def test_engine_schedule_bypass_accepts_call_at_and_scope():
    src = """\
        def handler(self, node):
            node.call_at(5, self.tick)
            self.plan.schedule.makespan()
            scheduler.schedule(5)
    """
    assert rules_hit(src, path=CORE_PATH) == []
    # The engine layer itself owns schedule(); the rule does not apply.
    raw = "sim.schedule(5, cb)\n"
    assert rules_hit(raw, path=SIM_PATH) == []
    suppressed = ("sim.schedule(5, cb)"
                  "  # lint: ignore[engine-schedule-bypass]\n")
    assert rules_hit(suppressed, path=CORE_PATH) == []


def test_mc_layer_is_in_restricted_scope():
    """repro/mc drives the deterministic engine: wall-clock and global
    RNG are as forbidden there as in sim/core."""
    from tools.lint.rules import _in_restricted_layer

    assert _in_restricted_layer("src/repro/mc/explorer.py")
    assert rules_hit("import time\nt = time.time()\n",
                     path=MC_PATH) == ["wallclock"]


# ------------------------------------------------- allocation-in-loop


BATCHCORE_PATH = "src/repro/perf/batchcore.py"
POOL_PATH = "src/repro/sim/message.py"


def test_allocation_in_loop_flags_constructors_and_displays():
    src = """\
        def emit(self, receivers):
            for rid in receivers:
                batch = Batch(rid)
                extras = []
                table = {}
            while self.pending:
                ids = [m.id for m in self.pending]
    """
    assert rules_hit(src, path=BATCHCORE_PATH) == ["allocation-in-loop"]
    assert rules_hit(src, path=POOL_PATH) == ["allocation-in-loop"]


def test_allocation_in_loop_accepts_pooled_steady_state():
    src = """\
        def emit(self, receivers):
            free = self.free
            for rid in receivers:
                batch = free.pop() if free else None
                batch.rid = rid
                self.sim_schedule(batch)
    """
    assert rules_hit(src, path=BATCHCORE_PATH) == []


def test_allocation_in_loop_scope_and_pragma():
    src = """\
        def grow(self, n):
            for _ in range(n):
                self.free.append(Message())
    """
    # Only the batched-core hot modules are in scope.
    assert rules_hit(src, path=CORE_PATH) == []
    assert rules_hit(src, path=SIM_PATH) == []
    suppressed = textwrap.dedent("""\
        def grow(self, n):
            for _ in range(n):
                self.free.append(Message())  # lint: ignore[allocation-in-loop]
    """)
    assert lint_source(suppressed, BATCHCORE_PATH, ALL_RULES) == []


def test_allocation_in_loop_outside_loops_is_fine():
    src = """\
        def begin(self):
            self.free = []
            self.batch = Batch()
    """
    assert rules_hit(src, path=BATCHCORE_PATH) == []


def test_batchcore_is_in_schedule_and_node_order_scope():
    """The batched core feeds the event queue directly, so the dict-view
    ordering rule and the schedule-bypass rule both watch it."""
    assert rules_hit("sim.schedule(5, cb)\n", path=BATCHCORE_PATH) \
        == ["engine-schedule-bypass"]
    assert rules_hit("pairs = [v for v in table.values()]\n",
                     path=BATCHCORE_PATH) == ["unsorted-node-iteration"]


# ------------------------------------------- float-time-arithmetic

BOUNDS_PATH = "src/repro/verify/bounds/analyzer.py"


def test_float_time_arithmetic_flags_division_and_float_literals():
    src = """\
        def detect(period, slack):
            mid = period / 2
            padded = period + 1.5
            return mid + padded
    """
    assert rules_hit(src, path=BOUNDS_PATH) == ["float-time-arithmetic"]


def test_float_time_arithmetic_accepts_integer_us():
    src = """\
        def detect(period, slack):
            mid = period // 2
            padded = period + slack * 3
            return -(-padded // 2)
    """
    assert rules_hit(src, path=BOUNDS_PATH) == []


def test_float_time_arithmetic_scope_and_pragma():
    src = "ratio = bound / empirical\n"
    # Only the bounds package is in scope: float arithmetic is fine in,
    # say, the analysis layer's reporting code.
    assert rules_hit(src, path=ANALYSIS_PATH) == []
    assert rules_hit(src, path=SIM_PATH) == []
    suppressed = ("ratio = bound / empirical"
                  "  # lint: ignore[float-time-arithmetic]\n")
    assert lint_source(suppressed, BOUNDS_PATH, ALL_RULES) == []


# --------------------------------------------------- JSON output


def test_violations_carry_column_numbers():
    src = textwrap.dedent("""\
        import time
        def now():
            return 1 + time.time()
    """)
    violations = lint_source(src, SIM_PATH, ALL_RULES)
    assert violations and violations[0].col > 0
    payload = violations[0].to_dict()
    assert set(payload) == {"path", "line", "col", "rule", "message"}
    assert payload["col"] == violations[0].col


def test_main_format_json(tmp_path, capsys):
    import json

    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text("import random\nx = random.random()\n")
    assert main(["--format=json", str(tmp_path)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["checked_files"] == 1
    [violation] = report["violations"]
    assert violation["rule"] == "unseeded-random"
    assert violation["line"] == 2 and violation["col"] > 0

    (pkg / "dirty.py").write_text("x = 1\n")
    assert main(["--format=json", str(tmp_path)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {"checked_files": 1, "violations": []}


def test_main_list_rules_json(capsys):
    import json

    assert main(["--list-rules", "--format=json"]) == 0
    catalogue = json.loads(capsys.readouterr().out)
    assert {r["id"] for r in catalogue} == {r.id for r in ALL_RULES}
