"""Tests for the bounded model checker (``repro.mc`` / ``repro check``).

The campaign tests all run the smallest config the placement rules
admit — ``pipeline`` on ``fullmesh:4`` with f=1 (f+1 replicas plus a
checker need three distinct non-victim hosts) — with tight bounds so
the whole file stays in CI-smoke territory.
"""

import json

import pytest

from repro.core.runtime.config import BTRConfig
from repro.core.runtime.system import BTRSystem
from repro.mc import (
    Cell,
    CheckParams,
    DeliveryPerturbation,
    cell_script,
    replay_counterexample,
    run_campaign,
    state_fingerprint,
)
from repro.mc.choices import validate_schedule
from repro.mc.counterexample import counterexample_from_dict
from repro.net import full_mesh_topology
from repro.sim.engine import SimulationError, Simulator
from repro.workload import pipeline_workload


def small_system(**config_kw):
    config = BTRConfig(f=1, trace_mode="milestones", **config_kw)
    system = BTRSystem(pipeline_workload(), full_mesh_topology(4), config)
    system.prepare()
    return system


def tiny_params(**kw):
    defaults = dict(kinds=("crash",), ticks=1, max_depth=1, branch=2,
                    max_paths=40)
    defaults.update(kw)
    return CheckParams(**defaults)


def run_tiny(params=None, **campaign_kw):
    return run_campaign(pipeline_workload(), full_mesh_topology(4),
                        BTRConfig(f=1), params or tiny_params(),
                        **campaign_kw)


# ------------------------------------------------------------ choice space


def test_cell_validation():
    assert Cell().fault_free
    assert Cell("n1", "crash", 40_000).label() == "n1/crash@40000"
    with pytest.raises(ValueError):
        Cell(victim="n1")  # partial triple
    with pytest.raises(ValueError):
        Cell("n1", "crash", -5)


def test_cell_round_trips_through_dict():
    for cell in (Cell(), Cell("n2", "commission", 44_000)):
        assert Cell.from_dict(cell.to_dict()) == cell


def test_cell_script_is_worker_independent():
    cell = Cell("n1", "commission", 40_000)
    a = cell_script(cell, seed=3)
    b = cell_script(cell, seed=3)
    assert [(i.time, i.node, i.behavior.kind) for i in a] \
        == [(i.time, i.node, i.behavior.kind) for i in b]
    assert cell_script(Cell(), seed=3).faulty_nodes == []


def test_validate_schedule_rejects_malformed():
    validate_schedule(((0, 1000), (3, 2000)))
    with pytest.raises(ValueError):
        validate_schedule(((3, 1000), (3, 2000)))  # not increasing
    with pytest.raises(ValueError):
        validate_schedule(((0, -5),))  # hooks may never accelerate


# ------------------------------------------------------------- engine hook


def test_delivery_hook_delays_chosen_deliveries():
    hook = DeliveryPerturbation(((1, 500),), record=True)
    assert hook("a", "b", 100) == 100   # index 0: untouched
    assert hook("a", "c", 200) == 700   # index 1: +500
    assert hook("b", "c", 300) == 300
    assert hook.observed == [(0, "a", "b", 100), (1, "a", "c", 200),
                             (2, "b", "c", 300)]


def test_engine_rejects_scheduling_into_the_past():
    sim = Simulator(seed=1, fast_heap=True)
    sim.schedule(10, lambda: sim.schedule(5, lambda: None))
    with pytest.raises(SimulationError):
        sim.run_until(20)
    with pytest.raises(SimulationError):
        sim.call_at(2, lambda: None)


def test_system_run_applies_delivery_hook():
    system = small_system()
    base = system.run(n_periods=6)
    hook = DeliveryPerturbation((), record=True)
    observed_run = system.run(n_periods=6, delivery_hook=hook)
    assert hook.count > 0  # the hook saw the run's deliveries
    assert state_fingerprint(observed_run) == state_fingerprint(base)


# -------------------------------------------------------------- fingerprint


def test_state_fingerprint_collapses_harmless_perturbation():
    """A small delay that changes no slot verdict, no switch, and no
    final state lands on the parent fingerprint — the dedup soundness
    argument in miniature."""
    system = small_system()
    base = system.run(n_periods=6)
    nudged = system.run(n_periods=6,
                        delivery_hook=DeliveryPerturbation(((0, 50),)))
    assert state_fingerprint(nudged) == state_fingerprint(base)


def test_state_fingerprint_separates_faulty_from_nominal():
    system = small_system()
    base = system.run(n_periods=8)
    faulty = system.run(n_periods=8,
                        adversary=cell_script(
                            Cell("n1", "crash", 40_000), seed=0))
    assert state_fingerprint(faulty) != state_fingerprint(base)


# ----------------------------------------------------------------- campaign


def test_campaign_certifies_sufficient_R():
    report, stats = run_tiny()
    assert report["certified"]
    assert report["totals"]["violating_paths"] == 0
    assert report["totals"]["truncated_cells"] == 0
    assert report["totals"]["paths"] > 0
    assert stats.paths == report["totals"]["paths"]


def test_campaign_dedup_is_nontrivial():
    params = tiny_params(kinds=("crash", "commission"), ticks=2,
                         max_depth=2, max_paths=60)
    report, _ = run_tiny(params)
    totals = report["totals"]
    assert totals["dedup_hits"] > 0
    assert totals["distinct_states"] < totals["paths"]


def test_campaign_byte_identical_across_worker_counts():
    params = tiny_params(kinds=("crash", "commission"), ticks=2,
                         max_depth=2, max_paths=60)
    serial, _ = run_tiny(params)
    try:
        parallel, pstats = run_tiny(
            CheckParams(**{**params.__dict__, "workers": 4}))
    except (OSError, ValueError, ImportError):
        pytest.skip("process pools unavailable in this environment")
    if pstats.pool_fallback:
        pytest.skip("worker pool could not be created")
    assert json.dumps(serial, sort_keys=True) \
        == json.dumps(parallel, sort_keys=True)


def test_campaign_underprovisioned_R_yields_confirmed_counterexample():
    params = tiny_params(kinds=("commission",), R_us=30_000)
    report, _ = run_tiny(params)
    assert not report["certified"]
    artifacts = [c["counterexample"] for c in report["cells"]
                 if c.get("counterexample")]
    assert artifacts, "under-provisioned R must produce a counterexample"
    for artifact in artifacts:
        assert artifact["replay_confirmed"]
        assert artifact["violations"]
        # Minimised: the fault alone breaks a 30ms bound here, so the
        # shortest-prefix schedule is empty.
        assert artifact["deliveries"] == []
        cell, deliveries = counterexample_from_dict(artifact)
        assert not cell.fault_free
        assert deliveries == ()


def test_counterexample_replays_through_normal_run_path():
    params = tiny_params(kinds=("commission",), R_us=30_000)
    report, _ = run_tiny(params)
    artifact = next(c["counterexample"] for c in report["cells"]
                    if c.get("counterexample"))
    # Round-trip through JSON: the artifact is a portable file format.
    artifact = json.loads(json.dumps(artifact))
    system = small_system()
    violations, result = replay_counterexample(system, artifact)
    assert violations
    assert violations[0].invariant == "recovery-bound"
    assert result.fault_times()  # the fault really was injected


def test_counterexample_from_dict_rejects_malformed():
    with pytest.raises(ValueError):
        counterexample_from_dict([])
    with pytest.raises(ValueError):
        counterexample_from_dict({"version": 1})
    good = {"version": 99, "cell": {}, "fault_script": {},
            "deliveries": [], "n_periods": 1, "R_us": 1, "k": 1,
            "seed": 0, "violations": []}
    with pytest.raises(ValueError):
        counterexample_from_dict(good)  # wrong version


def test_pruning_changes_no_verdicts():
    """Sleep-set pruning is a search optimisation: the violation set
    must be identical with and without it."""
    base = dict(kinds=("commission",), ticks=1, max_depth=2, branch=2,
                max_paths=80, R_us=30_000)

    def verdicts(report):
        return [(c["cell"], v["violations"])
                for c in report["cells"] for v in c["violating"]]

    pruned, _ = run_tiny(CheckParams(**base, prune=True))
    unpruned, _ = run_tiny(CheckParams(**base, prune=False))
    assert verdicts(pruned) == verdicts(unpruned)
    assert pruned["totals"]["paths"] <= unpruned["totals"]["paths"]


def test_truncated_campaign_is_not_certified():
    params = tiny_params(kinds=("crash", "commission"), ticks=2,
                         max_depth=3, branch=3, max_paths=2)
    report, _ = run_tiny(params)
    assert report["totals"]["truncated_cells"] > 0
    assert not report["certified"]
