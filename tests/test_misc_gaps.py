"""Small-gap unit tests: message sizing, metrics helpers, analysis
corners, distributor retry mechanics, generator parameters."""

import pytest

from repro.core.evidence import (
    COMMISSION,
    Evidence,
    EvidenceLog,
    EvidenceValidator,
)
from repro.crypto import AuthenticatedStatement, KeyDirectory
from repro.analysis import (
    BTRVerdict,
    replica_count,
)
from repro.sim import Message, MessageKind, ms
from repro.sched import PeriodicTask, response_time
from repro.workload import (
    Criticality,
    avionics_workload,
    automotive_workload,
    compute_output,
)


# ------------------------------------------------------------------ message


def test_message_sized_adds_bits_without_mutation():
    msg = Message(src="a", dst="b", kind=MessageKind.DATA, payload=None,
                  size_bits=100)
    bigger = msg.sized(50)
    assert bigger.size_bits == 150
    assert msg.size_bits == 100
    assert bigger.src == "a" and bigger.kind == MessageKind.DATA


def test_message_ids_are_unique():
    a = Message(src="a", dst="b", kind=MessageKind.DATA, payload=None,
                size_bits=1)
    b = Message(src="a", dst="b", kind=MessageKind.DATA, payload=None,
                size_bits=1)
    assert a.msg_id != b.msg_id


# ------------------------------------------------------------------ metrics


def test_replica_count_table():
    assert replica_count("unreplicated", 1) == 1
    assert replica_count("btr", 1) == 2
    assert replica_count("btr", 2) == 3
    assert replica_count("bft", 2) == 7
    with pytest.raises(KeyError):
        replica_count("magic", 1)


# ----------------------------------------------------------- sched analysis


def test_response_time_diverges_at_full_utilization():
    # The hog saturates the CPU: the fixed point escapes the deadline.
    tasks = [PeriodicTask("hog", 10, 10), PeriodicTask("low", 5, 1000)]
    assert response_time(1, tasks) is None


def test_deadline_monotonic_tie_breaks_by_name():
    from repro.sched import deadline_monotonic_order
    tasks = [PeriodicTask("b", 1, 10), PeriodicTask("a", 1, 10)]
    assert [t.name for t in deadline_monotonic_order(tasks)] == ["a", "b"]


# --------------------------------------------------------------- generators


def test_avionics_ife_channels_scale():
    one = avionics_workload(n_ife_channels=1)
    four = avionics_workload(n_ife_channels=4)
    d_tasks = lambda g: [t for t in g.tasks.values()
                         if t.criticality == Criticality.D]
    assert len(d_tasks(four)) == len(d_tasks(one)) + 6
    four.validate()
    with pytest.raises(ValueError):
        avionics_workload(n_ife_channels=0)


def test_automotive_wheel_count_scales_sources():
    two = automotive_workload(n_wheels=2)
    six = automotive_workload(n_wheels=6)
    assert len(six.sources) == len(two.sources) + 4
    six.validate()


# --------------------------------------------------------------- distributor


@pytest.fixture
def directory():
    d = KeyDirectory(master_seed=4)
    for n in ("det", "bad", "up"):
        d.register(n)
    return d


def make_commission(directory, detected_at=0):
    from repro.core.evidence import input_digest

    correct = compute_output("t", 1, [5])
    out = AuthenticatedStatement.make(directory, "bad", {
        "type": "output", "task": "t", "instance": "t#r0", "period": 1,
        "value": correct + 1, "input_digest": input_digest([5]),
        "send_offset": 10,
    })
    inp = AuthenticatedStatement.make(directory, "up", {
        "type": "fwd", "flow": "f", "period": 1, "value": 5,
        "send_offset": 5,
    })
    return Evidence.make(directory, COMMISSION, "bad", "det", detected_at,
                         [out, inp])


def test_log_note_then_evaluate_contract(directory):
    log = EvidenceLog("n", EvidenceValidator(directory))
    ev = make_commission(directory)
    assert log.note_evidence(ev)
    assert not log.note_evidence(ev)        # duplicate copies are free
    decision = log.evaluate_evidence(ev)
    assert decision.accept


def test_log_forget_allows_reevaluation(directory):
    log = EvidenceLog("n", EvidenceValidator(directory))
    ev = make_commission(directory)
    assert log.on_evidence(ev).accept
    assert log.on_evidence(ev).reason == "duplicate"
    log.forget(ev)
    assert log.on_evidence(ev).accept       # fresh after forget


def test_validator_without_roster_rejects_forward_mismatch(directory):
    from repro.core.evidence import FORWARD_MISMATCH

    stmt = AuthenticatedStatement.make(directory, "bad", {
        "type": "fwd", "flow": "f", "period": 0, "value": 1,
        "send_offset": 0,
    })
    ev = Evidence.make(directory, FORWARD_MISMATCH, "bad", "det", 0, [stmt])
    validator = EvidenceValidator(directory)  # no roster
    assert not validator.validate(ev)
    # And the rejection is soft (plan-dependent kind).
    log = EvidenceLog("n", validator)
    assert log.on_evidence(ev).reason == "unsupported_soft"


def test_attribution_freshness_window(directory):
    from repro.core.evidence import ATTRIBUTION, make_declaration

    decls = [
        make_declaration(directory, "det", ["bad", "det"], "f", p,
                         declared_at=100 + p)
        for p in range(3)
    ] + [make_declaration(directory, "up", ["bad", "up"], "f", 0,
                          declared_at=100)]
    ev = Evidence.make(directory, ATTRIBUTION, "bad", "det", 200, decls)
    # Declarations within the window before detected_at: valid.
    wide = EvidenceValidator(directory, attribution_freshness_us=1_000)
    assert wide.validate(ev)
    # A harvest: detected_at far after the declarations were made.
    narrow = EvidenceValidator(directory, attribution_freshness_us=50)
    assert not narrow.validate(ev)
    # Declarations "from the future" (after detected_at) never count.
    future = Evidence.make(directory, ATTRIBUTION, "bad", "det", 50, decls)
    assert not wide.validate(future)


# ---------------------------------------------------------------- verdicts


def test_btr_verdict_slot_views():
    from repro.analysis.correctness import SlotVerdict

    slots = [
        SlotVerdict("f", 0, 100, "correct", False, "A"),
        SlotVerdict("f", 1, 200, "missing", True, "A"),
        SlotVerdict("f", 2, 300, "wrong_value", False, "A"),
    ]
    verdict = BTRVerdict(R_us=0, slots=slots, holds=False,
                         violations=[slots[2]])
    assert len(verdict.disrupted_slots()) == 2
    assert len(verdict.excused_slots()) == 1
    assert not verdict.holds
