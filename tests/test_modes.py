"""Unit tests for mode-change machinery: fault sets, switcher, transitions."""

import pytest

from repro.core.modes import (
    FaultSet,
    ModeSwitcher,
    compute_transition,
    state_source,
    switch_boundary,
)
from repro.core.planner import build_plan
from repro.net import Router, full_mesh_topology
from repro.sim import ms
from repro.workload import pipeline_workload


# ----------------------------------------------------------------- FaultSet


def test_faultset_is_append_only():
    fs = FaultSet()
    assert fs.add("a")
    assert not fs.add("a")  # duplicates report no news
    assert fs.add("b")
    assert list(fs) == ["a", "b"]
    assert "a" in fs and "c" not in fs
    assert len(fs) == 2


def test_faultset_generation_bumps_on_new_info_only():
    fs = FaultSet()
    g0 = fs.generation
    fs.add("x")
    g1 = fs.generation
    fs.add("x")
    assert g1 > g0 and fs.generation == g1


def test_faultset_snapshot_is_immutable_copy():
    fs = FaultSet(["a"])
    snap = fs.snapshot()
    fs.add("b")
    assert snap == frozenset({"a"})


# ----------------------------------------------------------- switch boundary


def test_switch_boundary_is_next_period_start():
    # Evidence at 123, lead 100, period 1000 -> boundary 1000.
    assert switch_boundary(123, 100, 1000) == 1000
    # Exactly on a boundary stays there.
    assert switch_boundary(900, 100, 1000) == 1000
    # Past it rolls to the next.
    assert switch_boundary(950, 100, 1000) == 2000


def test_switch_boundary_is_deterministic_in_evidence_time():
    # Two nodes that accept the same evidence compute the same boundary,
    # regardless of when they each received it.
    b1 = switch_boundary(12_345, 5_000, 10_000)
    b2 = switch_boundary(12_345, 5_000, 10_000)
    assert b1 == b2 == 20_000


def test_switch_boundary_target_exactly_on_period_boundary():
    # evidence_time + lead landing exactly on a period start must pick
    # that period start, not roll over to the next one.
    assert switch_boundary(1_900, 100, 1_000) == 2_000
    assert switch_boundary(0, 1_000, 1_000) == 1_000
    assert switch_boundary(3_000, 2_000, 1_000) == 5_000


def test_switch_boundary_zero_lead():
    # lead=0: the boundary is the first period start at/after the
    # evidence time itself; evidence exactly on a start switches there.
    assert switch_boundary(2_000, 0, 1_000) == 2_000
    assert switch_boundary(2_001, 0, 1_000) == 3_000
    assert switch_boundary(0, 0, 1_000) == 0


# -------------------------------------------------------------- transitions


@pytest.fixture(scope="module")
def two_plans():
    wl = pipeline_workload(n_stages=2, period=ms(50))
    topo = full_mesh_topology(6, bandwidth=1e8)
    topo.place_endpoints_round_robin(wl.sources, wl.sinks)
    router = Router(topo)
    nominal = build_plan(wl, frozenset(), topo, router, f=1)
    # Fail a node that hosts something.
    hosting = sorted(set(nominal.assignment.values())
                     - set(topo.endpoint_map.values()))
    faulty = hosting[0]
    degraded = build_plan(wl, frozenset({faulty}), topo, router, f=1,
                          parent_assignment=nominal.assignment)
    return nominal, degraded, faulty


def test_transition_moves_only_what_the_fault_forces(two_plans):
    nominal, degraded, faulty = two_plans
    # The failed node's instances appear in someone's start list; nodes
    # unaffected by the fault mostly do nothing.
    displaced = set(nominal.instances_on(faulty))
    assert displaced  # the chosen node hosted something
    started = set()
    for node in degraded.schedule.node_schedules:
        t = compute_transition(node, nominal, degraded, {faulty})
        started |= set(t.start)
    assert displaced <= started


def test_transition_fetches_reference_correct_sources(two_plans):
    nominal, degraded, faulty = two_plans
    for node in degraded.schedule.node_schedules:
        t = compute_transition(node, nominal, degraded, {faulty})
        for fetch in t.fetches:
            assert fetch.source != faulty  # never fetch from the faulty node
            assert fetch.bits > 0


def test_state_source_prefers_old_host_then_sibling(two_plans):
    nominal, degraded, faulty = two_plans
    instance = nominal.instances_on(faulty)[0]
    # Old host faulty -> fall back to a sibling replica's host.
    source = state_source(instance, nominal, {faulty})
    if source is not None:
        assert source != faulty
    # With no faults, the old host itself is the source.
    assert state_source(instance, nominal, set()) == faulty


def test_state_source_none_when_everything_faulty(two_plans):
    nominal, degraded, faulty = two_plans
    instance = nominal.instances_on(faulty)[0]
    all_hosts = set(nominal.assignment.values())
    assert state_source(instance, nominal, all_hosts) is None


def test_transition_noop_for_uninvolved_node(two_plans):
    nominal, degraded, faulty = two_plans
    # A node with identical duties in both plans does nothing.
    for node in degraded.schedule.node_schedules:
        if (nominal.instances_on(node) == degraded.instances_on(node)
                and node != faulty):
            t = compute_transition(node, nominal, degraded, {faulty})
            assert t.is_noop
            break


# ----------------------------------------------------------------- switcher


@pytest.fixture()
def switcher():
    wl = pipeline_workload(n_stages=2, period=ms(50))
    topo = full_mesh_topology(6, bandwidth=1e8)
    topo.place_endpoints_round_robin(wl.sources, wl.sinks)
    from repro.core.planner import build_strategy
    strategy = build_strategy(wl, topo, Router(topo), f=1)
    return ModeSwitcher(strategy, period=ms(50), switch_lead=ms(10)), strategy


def test_switcher_schedules_switch_on_new_fault(switcher):
    sw, strategy = switcher
    victim = sorted(strategy.covered_nodes)[0]
    pending = sw.on_implicated(victim, evidence_time=120_000, now=125_000)
    assert pending is not None
    assert pending.at == 150_000  # next period start after 120ms + 10ms
    assert pending.plan.pattern == frozenset({victim})


def test_switcher_ignores_known_faults(switcher):
    sw, strategy = switcher
    victim = sorted(strategy.covered_nodes)[0]
    assert sw.on_implicated(victim, 120_000, 125_000) is not None
    assert sw.on_implicated(victim, 130_000, 135_000) is None


def test_switcher_late_learner_switches_immediately(switcher):
    sw, strategy = switcher
    victim = sorted(strategy.covered_nodes)[0]
    pending = sw.on_implicated(victim, evidence_time=120_000, now=200_000)
    assert pending.at == 200_000


def test_switcher_uncovered_node_changes_nothing(switcher):
    sw, strategy = switcher
    outside = "definitely-not-a-node"
    pending = sw.on_implicated(outside, 120_000, 125_000)
    assert pending is None  # fault set grew but the plan is unchanged
    assert outside in sw.fault_set


def test_switcher_reimplication_is_counted_not_rescheduled():
    from repro.obs import MetricsRegistry

    wl = pipeline_workload(n_stages=2, period=ms(50))
    topo = full_mesh_topology(6, bandwidth=1e8)
    topo.place_endpoints_round_robin(wl.sources, wl.sinks)
    from repro.core.planner import build_strategy
    strategy = build_strategy(wl, topo, Router(topo), f=1)
    metrics = MetricsRegistry()
    sw = ModeSwitcher(strategy, period=ms(50), switch_lead=ms(10),
                      metrics=metrics)
    victim = sorted(strategy.covered_nodes)[0]
    assert sw.on_implicated(victim, 120_000, 125_000) is not None
    # Re-implicating the same node (later evidence, retries, floods) is
    # ignored — and visibly so, via the metrics channel.
    for t in (130_000, 140_000, 150_000):
        assert sw.on_implicated(victim, t, t + 1_000) is None
    assert metrics.counter_value("implications_ignored",
                                 reason="known_fault") == 3
    assert metrics.counter_value("mode_switches_scheduled",
                                 kind="boundary") == 1
