"""Tests for topologies, routing, and bandwidth reservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    ReservationManager,
    Router,
    RoutingError,
    Topology,
    TopologyError,
    bus_topology,
    dual_star_topology,
    full_mesh_topology,
    line_topology,
    mesh_topology,
    ring_topology,
    star_topology,
)
from repro.sim import Link, MessageKind, Node, ReservationError, ms


# ----------------------------------------------------------------- topology


@pytest.mark.parametrize("factory,args,n_nodes", [
    (line_topology, (4,), 4),
    (ring_topology, (5,), 5),
    (star_topology, (4,), 5),          # 4 leaves + hub
    (bus_topology, (6,), 6),
    (mesh_topology, (2, 3), 6),
    (full_mesh_topology, (4,), 4),
    (dual_star_topology, (4,), 6),     # 4 leaves + 2 hubs
])
def test_builders_produce_connected_graphs(factory, args, n_nodes):
    topo = factory(*args)
    assert len(topo.nodes) == n_nodes
    assert topo.is_connected()


def test_builders_reject_degenerate_sizes():
    with pytest.raises(TopologyError):
        line_topology(1)
    with pytest.raises(TopologyError):
        ring_topology(2)
    with pytest.raises(TopologyError):
        bus_topology(1)


def test_duplicate_node_rejected():
    topo = Topology()
    topo.add_node(Node("a"))
    with pytest.raises(TopologyError):
        topo.add_node(Node("a"))


def test_link_with_unknown_endpoint_rejected():
    topo = Topology()
    topo.add_node(Node("a"))
    with pytest.raises(TopologyError):
        topo.add_link(Link("l", ("a", "ghost"), 1e6))


def test_bus_is_a_clique_in_routing_graph():
    topo = bus_topology(4)
    router = Router(topo)
    assert router.hop_count("n0", "n3") == 1


def test_ring_survives_single_node_loss():
    topo = ring_topology(6)
    assert topo.is_connected(excluding={"n2"})


def test_line_partitions_on_interior_loss():
    topo = line_topology(5)
    assert not topo.is_connected(excluding={"n2"})


def test_dual_star_survives_hub_loss():
    topo = dual_star_topology(5)
    assert topo.is_connected(excluding={"sw0"})


def test_endpoint_placement():
    topo = line_topology(3)
    topo.place_endpoint("sensor", "n0")
    assert topo.node_of_endpoint("sensor") == "n0"
    with pytest.raises(TopologyError):
        topo.node_of_endpoint("ghost")
    with pytest.raises(TopologyError):
        topo.place_endpoint("x", "ghost")


def test_round_robin_placement_marks_roles():
    topo = line_topology(4)
    topo.place_endpoints_round_robin(["s1", "s2"], ["k1"])
    assert topo.node_of_endpoint("s1") in topo.nodes
    src_node = topo.nodes[topo.node_of_endpoint("s1")]
    assert src_node.is_source
    sink_node = topo.nodes[topo.node_of_endpoint("k1")]
    assert sink_node.is_sink


# ------------------------------------------------------------------ routing


def test_shortest_path_on_line():
    topo = line_topology(5)
    router = Router(topo)
    assert router.route("n0", "n4") == ["n0", "n1", "n2", "n3", "n4"]
    assert router.hop_count("n0", "n4") == 4


def test_route_to_self():
    topo = line_topology(3)
    router = Router(topo)
    assert router.route("n1", "n1") == ["n1"]
    assert router.hops("n1", "n1") == []


def test_route_avoids_excluded_nodes():
    topo = ring_topology(6)
    router = Router(topo)
    direct = router.route("n0", "n2")
    assert direct == ["n0", "n1", "n2"]
    detour = router.route("n0", "n2", excluding={"n1"})
    assert "n1" not in detour
    assert detour[0] == "n0" and detour[-1] == "n2"


def test_route_raises_when_partitioned():
    topo = line_topology(5)
    router = Router(topo)
    with pytest.raises(RoutingError):
        router.route("n0", "n4", excluding={"n2"})


def test_route_unknown_endpoint_raises():
    topo = line_topology(3)
    router = Router(topo)
    with pytest.raises(RoutingError):
        router.route("n0", "ghost")


def test_links_on_route():
    topo = line_topology(4)
    router = Router(topo)
    assert router.links_on_route("n0", "n3") == ["l0", "l1", "l2"]


def test_route_cache_and_invalidate():
    topo = line_topology(4)
    router = Router(topo)
    first = router.route("n0", "n3")
    assert router.route("n0", "n3") is first  # cached object
    router.invalidate()
    assert router.route("n0", "n3") == first  # recomputed, equal


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=3, max_value=12))
def test_property_full_mesh_routes_are_single_hop(n):
    topo = full_mesh_topology(n)
    router = Router(topo)
    assert router.hop_count("n0", f"n{n - 1}") == 1


# -------------------------------------------------------------- reservation


def test_reservation_allocates_lanes_along_path():
    topo = line_topology(3, bandwidth=1e6)
    router = Router(topo)
    mgr = ReservationManager(topo, router, headroom=1.0)
    res = mgr.reserve_path("n0", "n2", MessageKind.DATA,
                           bits_per_period=10_000, period=ms(100))
    assert res.path == ["n0", "n1", "n2"]
    # 10k bits / 0.1 s = 100 kbps on a 1 Mbps link = 0.1 share.
    assert topo.links["l0"].lane("n0", MessageKind.DATA).share == pytest.approx(0.1)
    assert topo.links["l1"].lane("n1", MessageKind.DATA).share == pytest.approx(0.1)


def test_reservations_accumulate_per_sender():
    topo = line_topology(2, bandwidth=1e6)
    mgr = ReservationManager(topo, Router(topo), headroom=1.0)
    mgr.reserve_path("n0", "n1", MessageKind.DATA, 10_000, ms(100))
    mgr.reserve_path("n0", "n1", MessageKind.DATA, 10_000, ms(100))
    assert topo.links["l0"].lane("n0", MessageKind.DATA).share == pytest.approx(0.2)


def test_admission_control_rejects_overload():
    topo = line_topology(2, bandwidth=1e6)
    mgr = ReservationManager(topo, Router(topo), headroom=1.0)
    mgr.reserve_path("n0", "n1", MessageKind.DATA, 90_000, ms(100))
    with pytest.raises(ReservationError):
        mgr.reserve_path("n0", "n1", MessageKind.DATA, 20_000, ms(100))


def test_failed_reservation_commits_nothing():
    # Second hop is saturated; first hop must not be charged either.
    topo = line_topology(3, bandwidth=1e6)
    mgr = ReservationManager(topo, Router(topo), headroom=1.0)
    # Saturate l1 via a reservation from n1.
    mgr.reserve_path("n1", "n2", MessageKind.DATA, 95_000, ms(100))
    before = mgr.total_share("l0")
    with pytest.raises(ReservationError):
        mgr.reserve_path("n0", "n2", MessageKind.DATA, 20_000, ms(100))
    assert mgr.total_share("l0") == before


def test_headroom_scales_share():
    topo = line_topology(2, bandwidth=1e6)
    mgr = ReservationManager(topo, Router(topo), headroom=2.0)
    mgr.reserve_path("n0", "n1", MessageKind.DATA, 10_000, ms(100))
    assert topo.links["l0"].lane("n0", MessageKind.DATA).share == pytest.approx(0.2)


def test_invalid_headroom_rejected():
    topo = line_topology(2)
    with pytest.raises(ValueError):
        ReservationManager(topo, Router(topo), headroom=0.5)


def test_control_plane_reservation_covers_all_links():
    topo = ring_topology(4)
    mgr = ReservationManager(topo, Router(topo))
    mgr.reserve_control_plane(0.2)
    for link in topo.links.values():
        for sender in link.endpoints:
            assert link.lane(sender, MessageKind.EVIDENCE) is not None
            assert link.lane(sender, MessageKind.CONTROL) is not None


def test_release_all_frees_data_lanes_keeps_control():
    topo = line_topology(2, bandwidth=1e6)
    mgr = ReservationManager(topo, Router(topo), headroom=1.0)
    mgr.reserve_control_plane(0.1)
    mgr.reserve_path("n0", "n1", MessageKind.DATA, 10_000, ms(100))
    mgr.release_all()
    assert topo.links["l0"].lane("n0", MessageKind.DATA) is None
    assert topo.links["l0"].lane("n0", MessageKind.EVIDENCE) is not None
    # Capacity is actually free again.
    mgr.reserve_path("n0", "n1", MessageKind.DATA, 80_000, ms(100))


def test_reservation_respects_excluded_nodes():
    topo = ring_topology(5, bandwidth=1e7)
    mgr = ReservationManager(topo, Router(topo), headroom=1.0)
    res = mgr.reserve_path("n0", "n2", MessageKind.DATA, 1_000, ms(100),
                           excluding={"n1"})
    assert "n1" not in res.path
