"""Tests for the observability layer: metrics registry, recovery-timeline
reconstruction, export round-trip, and the silent-failure counters."""

import json

import pytest

from repro import BTRConfig, BTRSystem
from repro.faults import SingleFaultAdversary
from repro.net import full_mesh_topology
from repro.obs import (
    MILESTONES,
    PHASES,
    Histogram,
    MetricsRegistry,
    budget_attribution,
    export_run,
    load_report,
    reconstruct_timelines,
    render_key,
    render_phase_report,
    run_report,
)
from repro.workload import industrial_workload, pipeline_workload

FAULT_AT = 220_000


def btr_run(kind="commission", workload=None, n_periods=30, seed=42,
            **config_kw):
    system = BTRSystem(workload or industrial_workload(),
                       full_mesh_topology(7),
                       BTRConfig(f=1, seed=seed, **config_kw))
    system.prepare()
    adversary = (SingleFaultAdversary(at=FAULT_AT, kind=kind)
                 if kind else None)
    return system, system.run(n_periods, adversary)


@pytest.fixture(scope="module")
def commission_run():
    return btr_run("commission")


# ------------------------------------------------------------------ metrics


class TestMetricsRegistry:
    def test_counters_with_labels(self):
        m = MetricsRegistry()
        m.inc("messages_dropped", reason="no_route")
        m.inc("messages_dropped", reason="no_route")
        m.inc("messages_dropped", reason="link_loss", value=3)
        assert m.counter_value("messages_dropped", reason="no_route") == 2
        assert m.counter_value("messages_dropped", reason="link_loss") == 3
        assert m.counter_value("messages_dropped", reason="other") == 0
        assert m.counter_total("messages_dropped") == 5
        assert m.counters_named("messages_dropped") == {
            "messages_dropped{reason=link_loss}": 3,
            "messages_dropped{reason=no_route}": 2,
        }

    def test_label_order_is_irrelevant(self):
        m = MetricsRegistry()
        m.inc("x", a="1", b="2")
        m.inc("x", b="2", a="1")
        assert m.counter_value("x", b="2", a="1") == 2

    def test_render_key(self):
        assert render_key("n", []) == "n"
        assert render_key("n", [("a", "1"), ("b", "2")]) == "n{a=1,b=2}"

    def test_gauges(self):
        m = MetricsRegistry()
        m.set_gauge("sim_events_executed", 123)
        m.set_gauge("sim_events_executed", 456)  # last write wins
        assert m.gauge_value("sim_events_executed") == 456
        assert m.gauge_value("missing") is None

    def test_histogram_buckets(self):
        h = Histogram(bounds=(10, 100))
        for v in (1, 10, 11, 1_000):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["sum"] == 1_022
        assert d["min"] == 1 and d["max"] == 1_000
        assert d["buckets"] == {"le_10": 2, "le_100": 1, "le_inf": 1}

    def test_snapshot_is_deterministic_and_json_ready(self):
        def build(order):
            m = MetricsRegistry()
            for reason in order:
                m.inc("messages_dropped", reason=reason)
            m.set_gauge("g", 1)
            m.observe("h_us", 50)
            return m.snapshot()

        a = build(["b", "a", "c"])
        b = build(["c", "b", "a"])
        assert json.dumps(a, sort_keys=False) == json.dumps(b,
                                                            sort_keys=False)
        assert list(a["counters"]) == sorted(a["counters"])

    def test_empty_registry(self):
        m = MetricsRegistry()
        assert len(m) == 0
        assert m.snapshot() == {"counters": {}, "gauges": {},
                                "histograms": {}}


# ----------------------------------------------------------------- timeline


class TestReconstruction:
    def test_phase_sum_equals_recovery_time(self, commission_run):
        from repro.analysis import smallest_sufficient_R

        _, result = commission_run
        timelines = reconstruct_timelines(result)
        assert len(timelines) == 1
        t = timelines[0]
        assert t.fault_kind == "commission"
        assert t.manifest_us == FAULT_AT
        assert t.phase_sum() == t.total_us == smallest_sufficient_R(result)
        assert set(t.phases) == set(PHASES)
        assert all(span >= 0 for span in t.phases.values())

    def test_milestones_are_ordered_when_observed(self, commission_run):
        _, result = commission_run
        t = reconstruct_timelines(result)[0]
        observed = [t.milestones[m] for m in MILESTONES
                    if t.milestones[m] is not None]
        assert observed, "expected at least one observed milestone"
        assert all(v >= t.manifest_us for v in observed)
        # The conviction cannot precede the first charge, nor the quorum
        # the conviction.
        assert t.milestones["first_charge"] <= t.milestones["conviction"]
        assert t.milestones["conviction"] <= t.milestones["quorum"]

    def test_fault_free_run_has_no_timelines(self):
        _, result = btr_run(kind=None, n_periods=5,
                            workload=pipeline_workload())
        assert reconstruct_timelines(result) == []

    def test_reconstruction_is_deterministic(self, commission_run):
        _, result = commission_run
        a = [t.to_dict() for t in reconstruct_timelines(result)]
        b = [t.to_dict() for t in reconstruct_timelines(result)]
        assert a == b

    def test_masked_fault_yields_zero_total(self):
        # pipeline + commission is fully masked by replication: recovery
        # is 0 and every phase span collapses to 0 with it.
        _, result = btr_run(workload=pipeline_workload())
        timelines = reconstruct_timelines(result)
        if timelines and timelines[0].total_us == 0:
            assert timelines[0].phase_sum() == 0

    def test_budget_attribution_rows(self, commission_run):
        system, result = commission_run
        t = reconstruct_timelines(result)[0]
        rows = budget_attribution(t, system.budget)
        assert [r[0] for r in rows] == list(PHASES)
        for _phase, span, component, promised in rows:
            assert span >= 0
            assert promised == int(getattr(system.budget, component))


# ------------------------------------------------------------------- export


class TestExport:
    def test_round_trip(self, commission_run, tmp_path):
        _, result = commission_run
        path = str(tmp_path / "run.json")
        report = export_run(result, path)
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(report))  # JSON-stable
        assert loaded["faults"][0]["fault_kind"] == "commission"
        assert loaded["budget"]["total_us"] > 0
        assert loaded["trace_counts"]["FaultInjected"] == 1
        assert "counters" in loaded["metrics"]

    def test_report_phase_sums_hold_after_round_trip(self, commission_run,
                                                     tmp_path):
        # The CI obs-smoke gate: exported spans must sum to the exported
        # total for every fault.
        _, result = commission_run
        path = str(tmp_path / "run.json")
        export_run(result, path)
        for fault in load_report(path)["faults"]:
            assert sum(fault["phases"].values()) == fault["total_us"]

    def test_render_phase_report(self, commission_run):
        _, result = commission_run
        text = render_phase_report(run_report(result))
        assert "commission" in text
        for phase in PHASES:
            assert phase in text
        assert "Budget attribution" in text

    def test_render_handles_faultless_report(self):
        _, result = btr_run(kind=None, n_periods=5,
                            workload=pipeline_workload())
        text = render_phase_report(run_report(result))
        assert "no faults injected" in text


# ------------------------------------------------------------- run metrics


class TestRunMetrics:
    def test_run_result_carries_metrics_snapshot(self, commission_run):
        _, result = commission_run
        counters = result.metrics["counters"]
        assert counters.get("evidence_verdicts{reason=valid}", 0) > 0
        assert result.metrics["gauges"]["sim_events_executed"] > 0

    def test_link_losses_are_counted(self):
        from repro.sim import MessageDropped

        system = BTRSystem(pipeline_workload(), full_mesh_topology(6),
                           BTRConfig(f=1, seed=7))
        system.prepare()
        # Degrade every link heavily from the start.
        script = [(0, link_id, 0.5) for link_id in system.topology.links]
        result = system.run(6, link_script=script)
        dropped = result.metrics["counters"].get(
            "messages_dropped{reason=link_loss}", 0)
        assert dropped > 0
        assert result.trace.count(MessageDropped) == dropped

    def test_timeline_cli_trace_command(self, commission_run, tmp_path,
                                        capsys):
        from repro.cli import main as cli_main

        _, result = commission_run
        path = str(tmp_path / "run.json")
        export_run(result, path)
        assert cli_main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "Recovery phase breakdown" in out
        assert "commission" in out

    def test_trace_command_rejects_garbage(self, tmp_path):
        from repro.cli import main as cli_main

        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert cli_main(["trace", str(bad)]) == 2
