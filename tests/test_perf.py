"""The repro.perf layer: fan-out determinism, cache, memo, hot paths.

The contract under test, in decreasing strictness:

* process fan-out is byte-invisible — ``build_strategy_fanout`` with any
  worker count serialises identically to the legacy serial builder;
* the on-disk cache is content-keyed — hits round-trip losslessly, any
  planner-version bump (or input change) invalidates;
* symmetry memoisation is *valid*, not byte-identical — memoised
  strategies cover the same patterns, pass ``repro verify --strict``,
  and are themselves jobs-invariant;
* the Trace per-kind indices and the engine's O(1) live-event counter
  agree with the naive O(n) definitions they replaced.
"""

import pytest

from repro import BTRConfig, BTRSystem
from repro.core.planner import build_strategy, strategy_to_json
from repro.net import Router, full_mesh_topology, ring_topology
from repro.perf import (
    PlanningStats,
    StrategyCache,
    build_strategy_fanout,
    candidates_symmetric,
    strategy_cache_key,
)
from repro.sim.engine import Simulator
from repro.sim.trace import Custom, MessageSent, OutputProduced, Trace
from repro.workload import industrial_workload, pipeline_workload


def planning_inputs(n_nodes=6, workload=None):
    workload = workload or industrial_workload()
    topology = full_mesh_topology(n_nodes, bandwidth=1e8)
    topology.place_endpoints_round_robin(workload.sources, workload.sinks)
    return workload, topology, Router(topology)


# ------------------------------------------------------------- fan-out


class TestFanoutDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_byte_identical_to_serial(self, jobs):
        workload, topology, router = planning_inputs()
        serial = build_strategy(workload, topology, router, f=1)
        fanned = build_strategy_fanout(workload, topology, router, f=1,
                                       jobs=jobs)
        assert strategy_to_json(fanned) == strategy_to_json(serial)

    def test_byte_identical_at_f2(self):
        workload, topology, router = planning_inputs()
        serial = build_strategy(workload, topology, router, f=2)
        fanned = build_strategy_fanout(workload, topology, router, f=2,
                                       jobs=2)
        assert strategy_to_json(fanned) == strategy_to_json(serial)

    def test_stats_filled(self):
        workload, topology, router = planning_inputs()
        stats = PlanningStats()
        strategy = build_strategy_fanout(workload, topology, router, f=1,
                                         jobs=2, stats=stats)
        assert stats.jobs == 2
        assert stats.plans_total == len(strategy)
        assert stats.plans_computed == len(strategy)
        assert stats.plans_memoised == 0


# --------------------------------------------------------------- cache


class TestStrategyCache:
    def test_miss_then_hit_round_trips(self, tmp_path):
        workload, topology, router = planning_inputs()
        strategy = build_strategy(workload, topology, router, f=1)
        cache = StrategyCache(str(tmp_path))
        key = strategy_cache_key(workload, topology, 1, seed=0)
        assert cache.load(key) is None
        cache.store(key, strategy)
        cached = cache.load(key)
        assert cached is not None
        assert strategy_to_json(cached) == strategy_to_json(strategy)
        assert cache.hits == 1 and cache.misses == 1

    def test_key_covers_inputs(self):
        workload, topology, _ = planning_inputs()
        base = strategy_cache_key(workload, topology, 1, seed=0)
        assert strategy_cache_key(workload, topology, 1, seed=1) != base
        assert strategy_cache_key(workload, topology, 2, seed=0) != base
        assert strategy_cache_key(workload, topology, 1, seed=0,
                                  memo=True) != base
        other = pipeline_workload()
        topology.place_endpoints_round_robin(other.sources, other.sinks)
        assert strategy_cache_key(other, topology, 1, seed=0) != base

    def test_planner_version_bump_invalidates(self, monkeypatch):
        workload, topology, _ = planning_inputs()
        before = strategy_cache_key(workload, topology, 1, seed=0)
        import repro.perf.cache as cache_module
        monkeypatch.setattr(cache_module, "PLANNER_VERSION",
                            cache_module.PLANNER_VERSION + 1)
        assert strategy_cache_key(workload, topology, 1, seed=0) != before

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = StrategyCache(str(tmp_path))
        key = "0" * 64
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.load(key) is None
        assert cache.misses == 1

    @pytest.mark.parametrize("garbage", [
        "{not json",                      # not JSON at all
        "",                               # truncated to nothing
        "[1, 2, 3]",                      # JSON, wrong shape
        '{"format_version": 999}',        # JSON, wrong content
        '"just a string"',                # JSON scalar
    ])
    def test_corrupt_entry_is_quarantined(self, tmp_path, garbage):
        cache = StrategyCache(str(tmp_path))
        key = "1" * 64
        entry = tmp_path / f"{key}.json"
        entry.write_text(garbage)
        assert cache.load(key) is None
        assert cache.misses == 1
        assert cache.quarantined == 1
        # The bad bytes were moved aside, freeing the slot for a replan
        # and keeping them inspectable.
        assert not entry.exists()
        assert (tmp_path / f"{key}.json.corrupt").read_text() == garbage

    def test_missing_entry_is_plain_miss_not_quarantine(self, tmp_path):
        cache = StrategyCache(str(tmp_path))
        assert cache.load("2" * 64) is None
        assert cache.misses == 1
        assert cache.quarantined == 0

    def test_prepare_survives_corrupt_cache_entry(self, tmp_path):
        # End to end: garbage in the exact slot prepare() will consult
        # must behave as a miss — planning succeeds, cache_hit=False, and
        # the quarantine is visible in plan_stats and the metrics channel.
        workload = industrial_workload()
        topology = full_mesh_topology(6)
        config = BTRConfig(f=1, cache=str(tmp_path))
        # Match prepare()'s actual key inputs by preparing once, then
        # corrupting whatever entry it wrote.
        first = BTRSystem(workload, topology, config)
        first.prepare()
        written = first.plan_stats.cache_key
        entry = tmp_path / f"{written}.json"
        assert entry.exists()
        entry.write_text('{"truncated": ')

        system = BTRSystem(industrial_workload(), full_mesh_topology(6),
                           config)
        budget = system.prepare()
        assert budget.total_us > 0
        assert system.plan_stats.cache_hit is False
        assert system.plan_stats.cache_quarantined == 1
        assert system.metrics.counter_value("cache_entries_quarantined") == 1
        assert (tmp_path / f"{written}.json.corrupt").exists()
        # The replan overwrote the slot; a third prepare hits again.
        third = BTRSystem(industrial_workload(), full_mesh_topology(6),
                          config)
        third.prepare()
        assert third.plan_stats.cache_hit is True

    def test_system_prepare_hits_across_fresh_systems(self, tmp_path):
        def prepared():
            system = BTRSystem(
                industrial_workload(), full_mesh_topology(6),
                BTRConfig(f=1, cache=str(tmp_path)))
            system.prepare()
            return system

        first = prepared()
        assert first.plan_stats is not None
        assert not first.plan_stats.cache_hit
        second = prepared()
        assert second.plan_stats.cache_hit
        assert (strategy_to_json(second.strategy)
                == strategy_to_json(first.strategy))
        # The cached strategy powers a real run.
        result = second.run(n_periods=3)
        assert result.n_periods == 3

    def test_default_config_skips_perf_layer(self):
        system = BTRSystem(industrial_workload(), full_mesh_topology(6),
                           BTRConfig(f=1))
        system.prepare()
        assert system.plan_stats is None


# ---------------------------------------------------------------- memo


class TestSymmetryMemo:
    def test_full_mesh_is_symmetric_ring_is_not(self):
        workload, mesh, _ = planning_inputs()
        eligible = sorted(set(mesh.nodes)
                          - set(mesh.endpoint_map.values()))
        assert candidates_symmetric(mesh, eligible)
        ring = ring_topology(6, bandwidth=1e8)
        ring.place_endpoints_round_robin(workload.sources, workload.sinks)
        ring_eligible = sorted(set(ring.nodes)
                               - set(ring.endpoint_map.values()))
        assert not candidates_symmetric(ring, ring_eligible)

    def test_memo_covers_same_patterns_and_verifies_strict(self):
        from repro.verify import verify_strategy

        workload, topology, router = planning_inputs()
        stats = PlanningStats()
        memo = build_strategy_fanout(workload, topology, router, f=2,
                                     memo=True, stats=stats)
        exhaustive = build_strategy(workload, topology, router, f=2)
        assert memo.patterns() == exhaustive.patterns()
        assert stats.symmetric
        assert stats.plans_memoised > 0
        assert stats.plans_computed + stats.plans_memoised == len(memo)
        report = verify_strategy(memo, topology, router=router)
        assert report.exit_code(strict=True) == 0

    def test_memo_is_jobs_invariant(self):
        workload, topology, router = planning_inputs()
        one = build_strategy_fanout(workload, topology, router, f=1,
                                    jobs=1, memo=True)
        two = build_strategy_fanout(workload, topology, router, f=1,
                                    jobs=2, memo=True)
        assert strategy_to_json(one) == strategy_to_json(two)

    def test_memo_skipped_on_asymmetric_topology(self):
        workload = industrial_workload()
        topology = ring_topology(6, bandwidth=1e8)
        topology.place_endpoints_round_robin(workload.sources,
                                             workload.sinks)
        router = Router(topology)
        stats = PlanningStats()
        memo = build_strategy_fanout(workload, topology, router, f=1,
                                     memo=True, stats=stats)
        serial = build_strategy(workload, topology, router, f=1)
        assert not stats.symmetric
        assert stats.plans_memoised == 0
        assert strategy_to_json(memo) == strategy_to_json(serial)


# ------------------------------------------------------- trace indices


class TestTraceIndices:
    def test_interleaved_record_and_queries_match_naive(self):
        trace = Trace()
        shadow = []

        def naive(kind):
            return [e for e in shadow if type(e) is kind]

        for i in range(50):
            sent = MessageSent(time=i * 10, src="a", dst="b",
                               kind="data", size_bits=8, flow="f")
            trace.record(sent)
            shadow.append(sent)
            if i % 3 == 0:
                out = OutputProduced(time=i * 10 + 1, sink="b", flow="f",
                                     period_index=i, value=i,
                                     deadline=i * 10 + 5, criticality="A")
                trace.record(out)
                shadow.append(out)
            # Query between writes: indices must always be current.
            assert trace.of_kind(MessageSent) == naive(MessageSent)
            assert trace.of_kind(OutputProduced) == naive(OutputProduced)
            assert trace.count(MessageSent) == len(naive(MessageSent))
            assert trace.last(type(shadow[-1])) is shadow[-1]
        assert trace.of_kind(Custom) == []
        assert trace.count(Custom) == 0
        assert trace.last(Custom) is None

    def test_between_uses_time_slicing(self):
        trace = Trace()
        for i in range(20):
            trace.record(Custom(time=i * 100, label="x", data={}))
        window = trace.between(500, 1500)
        assert [e.time for e in window] == [500 + 100 * k for k in range(10)]

    def test_of_kind_returns_a_copy(self):
        trace = Trace()
        trace.record(Custom(time=0, label="x", data={}))
        trace.of_kind(Custom).clear()
        assert trace.count(Custom) == 1


# ------------------------------------------------------- engine events


class TestEngineEventAccounting:
    def test_pending_events_tracks_cancels(self):
        sim = Simulator(seed=0)
        handles = [sim.call_at(10 * (i + 1), lambda: None)
                   for i in range(10)]
        assert sim.pending_events() == 10
        for h in handles[:4]:
            h.cancel()
        assert sim.pending_events() == 6
        # Double-cancel must not double-count.
        handles[0].cancel()
        assert sim.pending_events() == 6

    def test_cancel_after_fire_is_a_noop(self):
        sim = Simulator(seed=0)
        fired = []
        handle = sim.call_at(5, lambda: fired.append(True))
        sim.run_until(10)
        assert fired
        assert sim.pending_events() == 0
        handle.cancel()
        assert sim.pending_events() == 0

    def test_heap_compaction_keeps_semantics(self):
        sim = Simulator(seed=0)
        fired = []
        handles = []
        for i in range(200):
            handles.append(
                sim.call_at(i + 1, lambda i=i: fired.append(i)))
        # Cancel well over half: compaction must trigger and the
        # survivors must still fire in order.
        for h in handles[:150]:
            h.cancel()
        assert sim.pending_events() == 50
        assert len(sim._queue) < 200  # compacted
        sim.run_until(1000)
        assert fired == list(range(150, 200))

    def test_peek_skips_cancelled_head(self):
        sim = Simulator(seed=0)
        first = sim.call_at(5, lambda: None)
        sim.call_at(7, lambda: None)
        first.cancel()
        assert sim.peek_next_time() == 7
        assert sim.pending_events() == 1
