"""Tests for the offline planner: augmentation, placement, plans, strategy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.planner import (
    AugmentConfig,
    PlacementConfig,
    PlacementError,
    PlanningError,
    Strategy,
    StrategyConfig,
    augment,
    build_plan,
    build_strategy,
    naming,
    place,
    plan_distance,
    replication_overhead,
)
from repro.net import Router, full_mesh_topology, line_topology, ring_topology
from repro.sim import ms
from repro.workload import (
    Criticality,
    avionics_workload,
    industrial_workload,
    pipeline_workload,
)


def deployed(workload, topo):
    topo.place_endpoints_round_robin(workload.sources, workload.sinks)
    return Router(topo)


# ------------------------------------------------------------------- naming


def test_naming_roundtrip():
    assert naming.base_task(naming.replica_name("ctrl", 2)) == "ctrl"
    assert naming.base_task(naming.checker_name("ctrl")) == "ctrl"
    assert naming.base_task("plain") == "plain"
    assert naming.replica_index("t#r3") == 3
    assert naming.replica_index("t#c") is None
    assert naming.is_checker("t#c") and not naming.is_checker("t#r0")
    assert naming.is_replica("t#r0") and not naming.is_replica("t#c")
    assert naming.is_primary("t#r0") and not naming.is_primary("t#r1")
    assert naming.base_flow("f@r1") == "f"
    assert naming.base_flow("f") == "f"


# ------------------------------------------------------------ augmentation


def test_augment_creates_replicas_and_checkers():
    wl = pipeline_workload(n_stages=2)
    aug = augment(wl, AugmentConfig(replicas=2))
    assert naming.replica_name("pipeline.t0", 0) in aug.tasks
    assert naming.replica_name("pipeline.t0", 1) in aug.tasks
    assert naming.checker_name("pipeline.t0") in aug.tasks
    assert len(aug.tasks) == 2 * 3  # (2 replicas + 1 checker) per task
    aug.validate()


def test_augment_flow_fanout():
    wl = pipeline_workload(n_stages=2)
    aug = augment(wl, AugmentConfig(replicas=2))
    # Internal flow f0: copies to r0, r1, checker of t1 (from t0's checker)
    # plus two audit copies (from t0's replicas to t1's checker).
    copies = [f for f in aug.flows if naming.base_flow(f.name) == "pipeline.f0"]
    assert len(copies) == 5
    from_checker = [f for f in copies
                    if f.src == naming.checker_name("pipeline.t0")]
    audits = [f for f in copies if "@a" in f.name]
    assert len(from_checker) == 3
    assert len(audits) == 2
    assert all(f.dst == naming.checker_name("pipeline.t1") for f in audits)
    assert all(naming.is_replica(f.src) for f in audits)
    # Sink flow: one @out copy from the checker plus one audit copy per
    # replica (so the sink host can audit actuator commands).
    outs = [f for f in aug.flows if naming.base_flow(f.name) == "pipeline.out"]
    assert len(outs) == 3
    command = next(f for f in outs if f.name.endswith("@out"))
    assert command.src == naming.checker_name("pipeline.t1")
    assert command.deadline == wl.flow("pipeline.out").deadline
    sink_audits = [f for f in outs if "@a" in f.name]
    assert len(sink_audits) == 2
    assert all(naming.is_replica(f.src) for f in sink_audits)


def test_augment_signs_flows():
    wl = pipeline_workload(n_stages=1)
    aug = augment(wl, AugmentConfig(replicas=2, signature_bits=512))
    original = wl.flow("pipeline.in").size_bits
    copy = next(f for f in aug.flows
                if naming.base_flow(f.name) == "pipeline.in")
    assert copy.size_bits == original + 512


def test_augment_preserves_criticality_and_state():
    wl = avionics_workload()
    aug = augment(wl, AugmentConfig(replicas=2))
    replica = aug.tasks[naming.replica_name("ctrl_law", 1)]
    assert replica.criticality == Criticality.A
    assert replica.state_bits == wl.tasks["ctrl_law"].state_bits
    checker = aug.tasks[naming.checker_name("ctrl_law")]
    assert checker.criticality == Criticality.A
    assert checker.state_bits == 0


def test_replication_overhead_less_than_bft():
    wl = avionics_workload()
    f = 1
    btr = replication_overhead(wl, AugmentConfig(replicas=f + 1))
    bft = replication_overhead(wl, AugmentConfig(replicas=3 * f + 1))
    assert btr < bft
    assert btr < 3.0  # f+1 replicas + small checkers


def test_augment_config_validation():
    with pytest.raises(ValueError):
        AugmentConfig(replicas=0)
    with pytest.raises(ValueError):
        AugmentConfig(check_us=0)


# -------------------------------------------------------------- placement


def test_replica_anti_affinity():
    wl = pipeline_workload(n_stages=2)
    topo = full_mesh_topology(4, bandwidth=1e7)
    router = deployed(wl, topo)
    aug = augment(wl, AugmentConfig(replicas=2))
    assignment = place(aug, topo, router, excluding=set())
    for base in wl.tasks:
        nodes = {assignment[i] for i in aug.tasks
                 if naming.base_task(i) == base}
        members = [i for i in aug.tasks if naming.base_task(i) == base]
        assert len(nodes) == len(members)  # pairwise distinct


def test_placement_avoids_excluded_nodes():
    wl = pipeline_workload(n_stages=2)
    topo = full_mesh_topology(5, bandwidth=1e7)
    router = deployed(wl, topo)
    aug = augment(wl, AugmentConfig(replicas=2))
    assignment = place(aug, topo, router, excluding={"n0", "n1"})
    assert not {"n0", "n1"} & set(assignment.values())


def test_placement_fails_when_too_few_nodes():
    wl = pipeline_workload(n_stages=1)
    topo = line_topology(2, bandwidth=1e7)
    router = deployed(wl, topo)
    aug = augment(wl, AugmentConfig(replicas=3))  # 4 instances, 2 nodes
    with pytest.raises(PlacementError):
        place(aug, topo, router, excluding=set())


def test_placement_is_deterministic():
    wl = avionics_workload()
    topo = full_mesh_topology(6, bandwidth=1e8)
    router = deployed(wl, topo)
    aug = augment(wl, AugmentConfig(replicas=2))
    a1 = place(aug, topo, router, excluding=set())
    a2 = place(aug, topo, router, excluding=set())
    assert a1 == a2


def test_distance_weight_keeps_instances_in_place():
    wl = pipeline_workload(n_stages=2)
    topo = full_mesh_topology(8, bandwidth=1e7)
    router = deployed(wl, topo)
    aug = augment(wl, AugmentConfig(replicas=2))
    parent = place(aug, topo, router, excluding=set())
    # Exclude a node that hosts nothing; child should match parent exactly.
    unused = next(n for n in topo.node_ids()
                  if n not in set(parent.values()))
    child = place(aug, topo, router, excluding={unused},
                  parent_assignment=parent)
    assert child == parent


# --------------------------------------------------------------------- plan


def test_build_plan_nominal_industrial():
    wl = industrial_workload()
    topo = full_mesh_topology(6, bandwidth=1e8)
    router = deployed(wl, topo)
    plan = build_plan(wl, frozenset(), topo, router, f=1)
    assert plan.mode == "nominal"
    assert plan.schedule.feasible
    assert plan.kept_levels == set(Criticality.ordered())
    assert len(plan.workload.tasks) == len(wl.tasks)  # nothing shed


def test_build_plan_sheds_under_pressure():
    # 3 eligible nodes, f=1: fault mode leaves 2 nodes for 3x tasks of a
    # heavy workload -> the low-criticality rungs must go.
    wl = avionics_workload(period=ms(20))
    topo = full_mesh_topology(4, bandwidth=1e8, speed=1.0)
    router = deployed(wl, topo)
    nominal = build_plan(wl, frozenset(), topo, router, f=1)
    # Find a pattern that forces shedding (may not always shed, but the
    # plan must still be feasible).
    candidates = [n for n in topo.node_ids()
                  if n not in set(topo.endpoint_map.values())]
    faulty = build_plan(wl, frozenset(candidates[:1]), topo, router, f=1,
                        parent_assignment=nominal.assignment)
    assert faulty.schedule.feasible
    assert faulty.kept_levels <= nominal.kept_levels


def test_build_plan_raises_when_hopeless():
    wl = pipeline_workload(n_stages=2, period=ms(1), wcet=ms(2))
    topo = full_mesh_topology(4, bandwidth=1e8)
    router = deployed(wl, topo)
    with pytest.raises(PlanningError):
        build_plan(wl, frozenset(), topo, router, f=1)


def test_plan_routes_and_instances():
    wl = pipeline_workload(n_stages=2)
    topo = full_mesh_topology(4, bandwidth=1e7)
    router = deployed(wl, topo)
    plan = build_plan(wl, frozenset(), topo, router, f=1)
    hosted = [plan.instances_on(n) for n in topo.node_ids()]
    assert sum(len(h) for h in hosted) == len(plan.augmented.tasks)
    for flow in plan.augmented.flows:
        route = plan.routes.get(flow.name)
        assert route, f"flow {flow.name} has no route"
        # Route endpoints match the assignment / endpoint map.
        src_node = plan.assignment.get(flow.src,
                                       topo.endpoint_map.get(flow.src))
        assert route[0] == src_node


def test_plan_next_hop():
    wl = pipeline_workload(n_stages=1)
    topo = line_topology(3, bandwidth=1e7)
    topo.place_endpoint("pipeline.sensor", "n0")
    topo.place_endpoint("pipeline.actuator", "n2")
    router = Router(topo)
    plan = build_plan(wl, frozenset(), topo, router, f=1)
    for flow_name, route in plan.routes.items():
        if len(route) >= 2:
            assert plan.next_hop(flow_name, route[0]) == route[1]
            assert plan.next_hop(flow_name, route[-1]) is None


# ----------------------------------------------------------------- strategy


@pytest.fixture(scope="module")
def small_strategy():
    wl = pipeline_workload(n_stages=2, period=ms(50))
    topo = full_mesh_topology(6, bandwidth=1e8)
    topo.place_endpoints_round_robin(wl.sources, wl.sinks)
    router = Router(topo)
    return wl, topo, build_strategy(wl, topo, router, f=1)


def test_strategy_covers_all_patterns(small_strategy):
    wl, topo, strategy = small_strategy
    protected = set(topo.endpoint_map.values())
    eligible = [n for n in topo.node_ids() if n not in protected]
    assert len(strategy) == 1 + len(eligible)
    for node in eligible:
        assert strategy.has_plan(frozenset({node}))


def test_strategy_plans_avoid_their_faulty_nodes(small_strategy):
    _, _, strategy = small_strategy
    for pattern in strategy.patterns():
        plan = strategy.plan_for(pattern)
        assert not set(plan.assignment.values()) & set(pattern)


def test_strategy_lookup_fallbacks(small_strategy):
    _, topo, strategy = small_strategy
    nominal = strategy.plan_for([])
    assert nominal.mode == "nominal"
    # Unknown (protected) node degrades to nominal.
    protected = sorted(set(topo.endpoint_map.values()))[0]
    assert strategy.plan_for([protected]) is nominal
    # Oversized fault set trims deterministically to f nodes.
    eligible = sorted(strategy.covered_nodes)
    plan = strategy.plan_for(eligible[:3])
    assert plan.pattern == frozenset(eligible[:1])


def test_strategy_minimizes_distance():
    wl = pipeline_workload(n_stages=2, period=ms(50))
    topo = full_mesh_topology(6, bandwidth=1e8)
    topo.place_endpoints_round_robin(wl.sources, wl.sinks)
    router = Router(topo)
    near = build_strategy(wl, topo, router, f=1,
                          config=StrategyConfig(minimize_distance=True))
    far = build_strategy(wl, topo, router, f=1,
                         config=StrategyConfig(minimize_distance=False))

    def total_bits(strategy):
        total = 0
        for child in strategy.patterns():
            if not child:
                continue
            parent = child - {sorted(child)[-1]}
            total += strategy.transition_distance(parent, child).state_bits
        return total

    assert total_bits(near) <= total_bits(far)


def test_plan_distance_accounting():
    parent = {"a#r0": "n0", "a#r1": "n1", "a#c": "n2"}
    child = {"a#r0": "n3", "a#r1": "n1", "a#c": "n2", "b#r0": "n1"}
    wl = pipeline_workload(n_stages=1)
    aug = augment(wl, AugmentConfig(replicas=2))
    d = plan_distance(parent, child, aug)
    assert d.moved_instances == 1
    assert d.new_instances == 1
    assert d.removed_instances == 0


def test_build_strategy_rejects_negative_f():
    wl = pipeline_workload()
    topo = full_mesh_topology(4)
    router = deployed(wl, topo)
    with pytest.raises(ValueError):
        build_strategy(wl, topo, router, f=-1)


def test_node_exposure_metric():
    from repro.core.planner import node_exposure
    from repro.sim import Link, LocalClock, Node
    from repro.net import Topology

    topo = Topology()
    for node_id in ("a", "b", "c"):
        topo.add_node(Node(node_id, clock=LocalClock()))
    topo.add_link(Link("fat", ("a", "b"), 1e8))
    topo.add_link(Link("thin", ("a", "c"), 1e7))
    topo.add_link(Link("bc", ("b", "c"), 1e8))
    assert node_exposure(topo, "a") == pytest.approx(10.0)
    assert node_exposure(topo, "b") == pytest.approx(1.0)
    # Single-homed node: effectively stranded if its neighbour fails.
    topo.add_node(Node("d", clock=LocalClock()))
    topo.add_link(Link("ad", ("a", "d"), 1e8))
    assert node_exposure(topo, "d") == 100.0


def test_worst_transition_transfer_metric():
    from repro.sched import LaneModel

    wl = industrial_workload()
    topo = full_mesh_topology(7, bandwidth=1e8)
    router = deployed(wl, topo)
    strategy = build_strategy(wl, topo, router, f=1)
    worst = strategy.worst_transition_transfer_us(
        topo, router, LaneModel(topo))
    assert worst >= 0
    # It is bounded by shipping the biggest task state over the slowest
    # STATE lane on the longest (here: single-hop) route.
    from repro.sim import MessageKind

    model = LaneModel(topo)
    slowest = min(model.rate_bits_per_us(link, MessageKind.STATE)
                  for link in topo.links.values())
    biggest = max(t.state_bits for t in wl.tasks.values())
    assert worst <= biggest / slowest + 1
