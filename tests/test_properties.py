"""Cross-module property tests: invariants that must hold for *any*
workload the generators can produce."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.planner import (
    AugmentConfig,
    PlacementError,
    augment,
    naming,
    place,
)
from repro.core.planner.plan import PlanningError, build_plan
from repro.net import Router, full_mesh_topology
from repro.sim import DeterministicRandom, MessageKind, ms
from repro.workload import random_workload

SEEDS = st.integers(min_value=0, max_value=10**6)


def deployed(workload, n_nodes=6, bandwidth=1e8):
    topo = full_mesh_topology(n_nodes, bandwidth=bandwidth)
    topo.place_endpoints_round_robin(workload.sources, workload.sinks)
    return topo, Router(topo)


# ------------------------------------------------------------- augmentation


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, replicas=st.integers(min_value=1, max_value=3))
def test_property_augmented_graphs_are_valid_and_complete(seed, replicas):
    workload = random_workload(DeterministicRandom(seed), n_tasks=8,
                               n_layers=2, period=ms(100))
    aug = augment(workload, AugmentConfig(replicas=replicas))
    aug.validate()
    # Exactly replicas+1 instances per original task.
    for task in workload.tasks:
        instances = [i for i in aug.tasks
                     if naming.base_task(i) == task]
        assert len(instances) == replicas + 1
    # Every replica reports to its checker.
    for task in workload.tasks:
        for i in range(replicas):
            assert any(
                f.src == naming.replica_name(task, i)
                and f.dst == naming.checker_name(task)
                for f in aug.flows
            )
    # Every original sink flow survives as exactly one @out command (plus
    # one audit copy per replica), with the original deadline.
    for flow in workload.sink_flows():
        outs = [f for f in aug.flows
                if naming.base_flow(f.name) == flow.name
                and f.dst == flow.dst]
        commands = [f for f in outs if f.name.endswith("@out")]
        assert len(commands) == 1
        assert commands[0].deadline == flow.deadline
        assert len(outs) == 1 + replicas


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_property_augmentation_preserves_total_criticality(seed):
    workload = random_workload(DeterministicRandom(seed), n_tasks=6,
                               n_layers=2, period=ms(100))
    aug = augment(workload, AugmentConfig(replicas=2))
    for instance, task in aug.tasks.items():
        base = workload.tasks[naming.base_task(instance)]
        assert task.criticality == base.criticality


# ---------------------------------------------------------------- placement


@settings(max_examples=15, deadline=None)
@given(seed=SEEDS)
def test_property_placement_always_satisfies_anti_affinity(seed):
    workload = random_workload(DeterministicRandom(seed), n_tasks=6,
                               n_layers=2, period=ms(100))
    aug = augment(workload, AugmentConfig(replicas=2))
    topo, router = deployed(workload, n_nodes=7)
    try:
        assignment = place(aug, topo, router, excluding=set())
    except PlacementError:
        return  # legitimately infeasible
    groups = {}
    for instance, node in assignment.items():
        groups.setdefault(naming.base_task(instance), []).append(node)
    for base, nodes in groups.items():
        assert len(nodes) == len(set(nodes)), f"{base} collides"


@settings(max_examples=15, deadline=None)
@given(seed=SEEDS,
       excluded=st.sets(st.sampled_from(["n1", "n2", "n3"]), max_size=2))
def test_property_placement_respects_exclusions(seed, excluded):
    workload = random_workload(DeterministicRandom(seed), n_tasks=5,
                               n_layers=2, period=ms(100))
    aug = augment(workload, AugmentConfig(replicas=2))
    topo, router = deployed(workload, n_nodes=7)
    try:
        assignment = place(aug, topo, router, excluding=set(excluded))
    except PlacementError:
        return
    assert not set(assignment.values()) & set(excluded)


# -------------------------------------------------------------------- plans


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_property_feasible_plans_meet_their_own_timetable(seed):
    workload = random_workload(DeterministicRandom(seed), n_tasks=6,
                               n_layers=2, period=ms(100))
    topo, router = deployed(workload, n_nodes=7)
    try:
        plan = build_plan(workload, frozenset(), topo, router, f=1)
    except PlanningError:
        return
    schedule = plan.schedule
    assert schedule.feasible
    # Tables never overlap and never overrun the period (NodeSchedule
    # enforces this, but the property pins it for synthesized output).
    for node_schedule in schedule.node_schedules.values():
        entries = sorted(node_schedule, key=lambda e: e.start)
        for a, b in zip(entries, entries[1:]):
            assert a.finish <= b.start
        if entries:
            assert entries[-1].finish <= workload.period
    # Per-lane transmissions are serialized.
    lanes = {}
    for t in schedule.transmissions:
        lanes.setdefault((t.link_id, t.sender), []).append(t)
    for txs in lanes.values():
        txs.sort(key=lambda t: t.start)
        for a, b in zip(txs, txs[1:]):
            # a's serialization must end before b's starts (arrival
            # includes propagation, so compare conservatively).
            link_prop = a.arrival - a.start  # serialization + propagation
            assert b.start >= a.start + 1
    # Every consumer's inputs arrive no later than its slot start.
    for instance in plan.augmented.tasks:
        slot = schedule.slot_for(instance)
        if slot is None:
            continue
        for flow in plan.augmented.inputs_of(instance):
            assert schedule.arrivals[flow.name] <= slot.start, (
                f"{flow.name} arrives after {instance}'s slot"
            )


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_property_plan_routes_avoid_the_fault_pattern(seed):
    workload = random_workload(DeterministicRandom(seed), n_tasks=5,
                               n_layers=2, period=ms(100))
    topo, router = deployed(workload, n_nodes=7)
    pattern = frozenset({"n2"})
    try:
        plan = build_plan(workload, pattern, topo, router, f=1)
    except PlanningError:
        return
    for route in plan.routes.values():
        assert not set(route) & pattern


# ----------------------------------------------------------- end-to-end BTR


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_random_workload_runs_recover(seed):
    """Any schedulable random workload recovers from a commission fault."""
    from repro import BTRConfig, BTRSystem
    from repro.analysis import btr_verdict
    from repro.faults import SingleFaultAdversary

    workload = random_workload(DeterministicRandom(seed), n_tasks=6,
                               n_layers=2, period=ms(100))
    topo = full_mesh_topology(7, bandwidth=1e8)
    system = BTRSystem(workload, topo, BTRConfig(f=1, seed=seed))
    try:
        budget = system.prepare()
    except (PlanningError, PlacementError):
        return
    if not system.compromisable_nodes():
        return
    result = system.run(
        24, SingleFaultAdversary(at=250_000, kind="commission"))
    verdict = btr_verdict(result, R_us=budget.total_us)
    assert verdict.holds, [
        (v.flow, v.period_index, v.status) for v in verdict.violations[:5]]
