"""Integration tests: the full BTR runtime on the simulator.

These tests run complete deployments end-to-end and assert the system-level
properties the paper promises: correct, timely outputs when fault-free;
bounded recovery after each fault type; convergence of fault sets; immunity
to evidence flooding.
"""

import pytest

from repro import BTRConfig, BTRSystem
from repro.core.runtime.system import NotPreparedError
from repro.faults import (
    EvidenceFloodFault,
    FaultScript,
    Injection,
    PacingAdversary,
    SingleFaultAdversary,
)
from repro.net import full_mesh_topology
from repro.sim import (
    EvidenceGenerated,
    EvidenceRejected,
    FaultInjected,
    ModeSwitchCompleted,
    OutputProduced,
)
from repro.workload import (
    compute_output,
    industrial_workload,
    sensor_reading,
)

PERIOD_COUNT = 24
FAULT_AT = 220_000  # mid period 4 of the 50 ms industrial workload


def oracle_value(workload, flow_base, k):
    """Reference output value of a sink flow in period k."""
    values = {}
    for source in workload.sources:
        values[source] = sensor_reading(source, k)
    for task in workload.topological_order():
        inputs = [values[f.src] for f in workload.inputs_of(task)]
        values[task] = compute_output(task, k, inputs)
    return values[workload.flow(flow_base).src]


def run_system(kind=None, f=1, seed=42, n_nodes=7, n_periods=PERIOD_COUNT,
               adversary=None, config=None):
    workload = industrial_workload()
    topology = full_mesh_topology(n_nodes, bandwidth=1e8)
    system = BTRSystem(workload, topology,
                       config or BTRConfig(f=f, seed=seed))
    system.prepare()
    if adversary is None and kind is not None:
        adversary = SingleFaultAdversary(at=FAULT_AT, kind=kind)
    return system, system.run(n_periods=n_periods, adversary=adversary)


def classify_periods(result, n_periods=PERIOD_COUNT):
    """(wrong_periods, missing_periods) against the oracle."""
    workload = result.workload
    wrong = set()
    got = set()
    for o in result.outputs():
        got.add((o.flow, o.period_index))
        if o.value != oracle_value(workload, o.flow, o.period_index):
            wrong.add(o.period_index)
    expected = {(f.name, k) for f in workload.sink_flows()
                for k in range(n_periods)}
    missing = {k for (_, k) in expected - got}
    return sorted(wrong), sorted(missing)


@pytest.fixture(scope="module")
def fault_free():
    return run_system(kind=None)


def test_run_requires_prepare():
    workload = industrial_workload()
    system = BTRSystem(workload, full_mesh_topology(6, bandwidth=1e8))
    with pytest.raises(NotPreparedError):
        system.run(n_periods=1)


def test_fault_free_outputs_all_correct_and_timely(fault_free):
    _, result = fault_free
    wrong, missing = classify_periods(result)
    assert wrong == [] and missing == []
    for o in result.outputs():
        assert o.time <= o.deadline, (
            f"{o.flow} period {o.period_index} late: {o.time} > {o.deadline}"
        )


def test_fault_free_generates_no_evidence(fault_free):
    _, result = fault_free
    assert result.trace.of_kind(EvidenceGenerated) == []
    assert result.mode_switches() == []
    assert all(fs == frozenset() for fs in result.final_fault_sets.values())


def test_prepare_reports_budget(fault_free):
    system, result = fault_free
    budget = result.budget
    assert budget.total_us > 0
    assert budget.detection_us > 0
    assert budget.distribution_us > 0


def test_requested_r_too_tight_raises():
    workload = industrial_workload()
    system = BTRSystem(workload, full_mesh_topology(7, bandwidth=1e8),
                       BTRConfig(f=1, R_us=1_000))
    with pytest.raises(ValueError, match="not achievable"):
        system.prepare()


@pytest.mark.parametrize("kind", [
    "commission", "crash", "omission", "timing", "equivocation",
])
def test_single_fault_recovery_is_bounded(kind):
    system, result = run_system(kind=kind)
    wrong, missing = classify_periods(result)
    disrupted = set(wrong) | set(missing)
    period = result.workload.period
    fault_period = FAULT_AT // period
    # No disruption before the fault.
    assert all(k >= fault_period for k in disrupted)
    # Recovery within the computed budget.
    budget_periods = -(-result.budget.total_us // period)
    assert all(k <= fault_period + budget_periods for k in disrupted), (
        f"{kind}: disruption {sorted(disrupted)} exceeds budget "
        f"{budget_periods} periods after fault in period {fault_period}"
    )
    # Sustained recovery: the last quarter of the run is clean.
    assert not disrupted & set(range(PERIOD_COUNT - 6, PERIOD_COUNT))


@pytest.mark.parametrize("kind", [
    "commission", "crash", "omission", "equivocation",
])
def test_correct_nodes_converge_on_the_faulty_node(kind):
    system, result = run_system(kind=kind)
    faulty = set(result.fault_times())
    assert len(faulty) == 1
    correct_sets = [
        fs for node, fs in result.final_fault_sets.items()
        if node not in faulty
    ]
    assert all(fs == frozenset(faulty) for fs in correct_sets)
    # And no correct node is ever implicated.
    for fs in correct_sets:
        assert not fs - faulty


def test_crash_faults_recover_via_attribution():
    system, result = run_system(kind="crash")
    kinds = {e.fault_kind for e in result.trace.of_kind(EvidenceGenerated)}
    assert "attribution" in kinds


def test_commission_faults_produce_transferable_conviction():
    system, result = run_system(kind="commission")
    kinds = {e.fault_kind for e in result.trace.of_kind(EvidenceGenerated)}
    assert kinds & {"commission", "forward_mismatch"}


def test_forged_evidence_flood_is_rejected_and_endorser_attributed():
    """Forged junk is cheap-rejected, and §4.3's endorsement rule makes
    its *distributor* attributable: the flooder signed the endorsements
    on its own junk, collects the slander charges, and is excluded."""
    system, result = run_system(kind="evidence_flood")
    rejected = result.trace.of_kind(EvidenceRejected)
    assert len(rejected) > 50
    assert all(r.reason == "bad_signature" for r in rejected)
    flooder = next(iter(result.fault_times()))
    correct_sets = [fs for n, fs in result.final_fault_sets.items()
                    if n != flooder]
    assert all(fs == frozenset({flooder}) for fs in correct_sets)
    # Outputs: at most the usual bounded switch blip, fully excused.
    verdict = btr_verdict_for(result, system)
    assert verdict.holds


def btr_verdict_for(result, system):
    from repro.analysis import btr_verdict
    return btr_verdict(result, R_us=system.budget.total_us)


def test_properly_signed_slander_implicates_the_signer():
    workload = industrial_workload()
    system = BTRSystem(workload, full_mesh_topology(7, bandwidth=1e8),
                       BTRConfig(f=1, seed=5))
    system.prepare()
    victim = system.compromisable_nodes()[0]
    script = FaultScript([Injection(
        FAULT_AT, victim,
        EvidenceFloodFault(records_per_period=5, proper_signatures=True),
    )])
    result = system.run(n_periods=PERIOD_COUNT, adversary=script)
    correct_sets = [fs for n, fs in result.final_fault_sets.items()
                    if n != victim]
    assert all(fs == frozenset({victim}) for fs in correct_sets)
    wrong, missing = classify_periods(result)
    # The slanderer gets excluded; outputs never degrade beyond the budget.
    assert wrong == []


def test_pacing_adversary_with_f2_is_contained():
    workload = industrial_workload()
    system = BTRSystem(workload, full_mesh_topology(9, bandwidth=1e8),
                       BTRConfig(f=2, seed=1))
    system.prepare()
    adversary = PacingAdversary(start=200_000, interval=300_000, k=2,
                                kind="commission")
    result = system.run(n_periods=30, adversary=adversary)
    wrong, missing = classify_periods(result, n_periods=30)
    disrupted = set(wrong) | set(missing)
    # Two separate disruption windows, both bounded; clean at the end.
    assert not disrupted & set(range(24, 30))
    faulty = set(result.fault_times())
    assert len(faulty) == 2
    correct_sets = [fs for n, fs in result.final_fault_sets.items()
                    if n not in faulty]
    assert all(fs == frozenset(faulty) for fs in correct_sets)


def test_runs_are_deterministic():
    def outputs_of_run():
        _, result = run_system(kind="commission", seed=7)
        return [(o.time, o.flow, o.period_index, o.value)
                for o in result.outputs()]

    assert outputs_of_run() == outputs_of_run()


def test_different_seeds_still_recover():
    for seed in (1, 2, 3):
        _, result = run_system(kind="commission", seed=seed)
        wrong, missing = classify_periods(result)
        disrupted = set(wrong) | set(missing)
        assert not disrupted & set(range(PERIOD_COUNT - 6, PERIOD_COUNT))


def test_mode_switches_are_lockstep():
    system, result = run_system(kind="commission")
    faulty = set(result.fault_times())
    switch_times = {}
    for e in result.mode_switches():
        if e.node in faulty:
            continue
        switch_times.setdefault(e.mode, set()).add(e.time)
    # Every correct node adopts each mode at the same boundary.
    for mode, times in switch_times.items():
        assert len(times) == 1, f"mode {mode} adopted at {sorted(times)}"


def test_run_result_summary_mentions_faults():
    system, result = run_system(kind="crash")
    text = result.summary()
    assert "faults" in text and "outputs" in text
