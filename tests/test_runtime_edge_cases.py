"""Runtime edge cases: rogue clocks, drift, lossy links, topologies,
state-transfer fallbacks, quotas, strategic placement."""

import pytest

from repro import BTRConfig, BTRSystem
from repro.analysis import (
    btr_verdict,
    smallest_sufficient_R,
    timeliness,
)
from repro.faults import (
    CrashFault,
    FaultScript,
    Injection,
    OmissionFault,
    RogueClockFault,
    SingleFaultAdversary,
)
from repro.net import (
    dual_star_topology,
    full_mesh_topology,
    mesh_topology,
    ring_topology,
)
from repro.sim import EvidenceGenerated, ModeSwitchCompleted
from repro.workload import industrial_workload

N_PERIODS = 30
FAULT_AT = 220_000


def make_system(topology=None, config=None, **config_kwargs):
    system = BTRSystem(
        industrial_workload(),
        topology or full_mesh_topology(7, bandwidth=1e8),
        config or BTRConfig(f=1, seed=37, **config_kwargs),
    )
    system.prepare()
    return system


# ------------------------------------------------------------------- clocks


def test_heavy_drift_does_not_disrupt_fault_free_runs():
    system = make_system(clock_drift_ppm=500.0)
    result = system.run(N_PERIODS)
    assert smallest_sufficient_R(result) == 0
    assert not result.trace.of_kind(EvidenceGenerated)


def test_rogue_clock_detected_and_isolated():
    system = make_system()
    victim = system.compromisable_nodes()[0]
    result = system.run(N_PERIODS, FaultScript([
        Injection(FAULT_AT, victim, RogueClockFault(offset_us=150_000)),
    ]))
    kinds = {e.fault_kind for e in result.trace.of_kind(EvidenceGenerated)}
    assert "timing" in kinds
    correct = [fs for n, fs in result.final_fault_sets.items()
               if n != victim]
    assert all(fs == frozenset({victim}) for fs in correct)


def test_small_rogue_offset_goes_down_the_declaration_route():
    # A 10 ms offset stays inside the period: not gross, so no timing
    # evidence — but arrival anomalies pile up declarations.
    system = make_system()
    victim = system.compromisable_nodes()[0]
    result = system.run(N_PERIODS, FaultScript([
        Injection(FAULT_AT, victim, RogueClockFault(offset_us=10_000)),
    ]))
    kinds = {e.fault_kind for e in result.trace.of_kind(EvidenceGenerated)}
    assert "timing" not in kinds
    # Either attribution catches it, or the offset was harmless; in both
    # cases no innocent is ever implicated.
    for node, fs in result.final_fault_sets.items():
        if node != victim:
            assert fs <= {victim}


# --------------------------------------------------------------- topologies


@pytest.mark.parametrize("factory", [
    lambda: ring_topology(7, bandwidth=1e8),
    lambda: mesh_topology(3, 3, bandwidth=1e8),
    lambda: dual_star_topology(6, bandwidth=1e8),
])
def test_recovery_on_multihop_topologies(factory):
    system = make_system(topology=factory())
    result = system.run(N_PERIODS, SingleFaultAdversary(
        at=FAULT_AT, kind="commission"))
    verdict = btr_verdict(result, R_us=system.budget.total_us)
    assert verdict.holds, [
        (v.flow, v.period_index, v.status) for v in verdict.violations[:5]]
    faulty = set(result.fault_times())
    for node, fs in result.final_fault_sets.items():
        if node not in faulty:
            assert fs == frozenset(faulty)


# -------------------------------------------------------------- lossy links


def test_residual_link_loss_is_tolerated():
    # Post-FEC residual loss: rare drops must not trigger recovery storms.
    topology = full_mesh_topology(7, bandwidth=1e8)
    for link in topology.links.values():
        link.loss_probability = 0.001
    system = make_system(topology=topology)
    result = system.run(N_PERIODS)
    # No node gets implicated by sporadic losses.
    assert all(fs == frozenset() for fs in result.final_fault_sets.values())
    report = timeliness(result)
    assert report.miss_rate < 0.05


# --------------------------------------------------------- state transfer


def test_state_rebuild_when_source_crashes_midway():
    """Two faults: the second victim is the state source for instances
    displaced by the first. The fetch times out and rebuild kicks in."""
    system = BTRSystem(
        industrial_workload(), full_mesh_topology(8, bandwidth=1e8),
        BTRConfig(f=2, seed=37),
    )
    system.prepare()
    victims = system.compromisable_nodes()[:2]
    result = system.run(40, FaultScript([
        Injection(FAULT_AT, victims[0], CrashFault()),
        Injection(FAULT_AT + 150_000, victims[1], CrashFault()),
    ]))
    verdict = btr_verdict(result, R_us=system.budget.total_us)
    assert verdict.holds
    correct = [fs for n, fs in result.final_fault_sets.items()
               if n not in victims]
    assert all(fs == frozenset(victims) for fs in correct)


def test_simultaneous_double_fault():
    system = BTRSystem(
        industrial_workload(), full_mesh_topology(9, bandwidth=1e8),
        BTRConfig(f=2, seed=37),
    )
    system.prepare()
    victims = system.compromisable_nodes()[:2]
    result = system.run(40, FaultScript([
        Injection(FAULT_AT, victims[0], OmissionFault()),
        Injection(FAULT_AT, victims[1], OmissionFault()),
    ]))
    correct = [fs for n, fs in result.final_fault_sets.items()
               if n not in victims]
    # Both eventually isolated (possibly sequentially); no innocents.
    union = set().union(*correct)
    assert union <= set(victims)
    assert victims[0] in union or victims[1] in union
    # Clean at the end of the run.
    from repro.analysis import classify_slots
    disrupted = {s.period_index for s in classify_slots(result, R_us=0)
                 if s.status != "correct" and not s.excused}
    assert not disrupted & set(range(34, 40))


# ------------------------------------------------------------------- quotas


def test_quota_does_not_throttle_legitimate_recovery():
    # A tiny quota must still let a real fault's evidence through
    # (records arrive from several senders; dedup happens first).
    system = make_system(evidence_quota_per_sender=2)
    result = system.run(N_PERIODS, SingleFaultAdversary(
        at=FAULT_AT, kind="crash"))
    verdict = btr_verdict(result, R_us=system.budget.total_us)
    assert verdict.holds


# -------------------------------------------------------------- protections


def test_endpoint_nodes_are_never_accused():
    system = make_system()
    protected = set(system.topology.endpoint_map.values())
    result = system.run(N_PERIODS, SingleFaultAdversary(
        at=FAULT_AT, kind="omission"))
    for fs in result.final_fault_sets.values():
        assert not fs & protected


def test_strategic_placement_flag_roundtrip():
    on = make_system(strategic_placement=True)
    off = make_system(strategic_placement=False)
    # On a homogeneous full mesh the exposure term is inert: identical
    # plans either way (the flag only matters on lopsided topologies).
    assert (on.strategy.nominal.assignment
            == off.strategy.nominal.assignment)


def test_mode_switches_complete_for_every_correct_node():
    system = make_system()
    result = system.run(N_PERIODS, SingleFaultAdversary(
        at=FAULT_AT, kind="commission"))
    switched = {e.node for e in result.trace.of_kind(ModeSwitchCompleted)}
    correct = set(system.topology.nodes) - set(result.fault_times())
    assert correct <= switched


def test_run_can_be_repeated_on_same_system():
    system = make_system()
    r1 = system.run(10)
    r2 = system.run(10)
    assert [(o.time, o.flow, o.value) for o in r1.outputs()] == \
           [(o.time, o.flow, o.value) for o in r2.outputs()]


def test_task_shed_events_recorded_once_per_task():
    """When the post-fault plan sheds criticality, the trace records each
    shed task exactly once (E4's raw signal)."""
    from repro.sim import TaskShed
    from repro.workload import avionics_workload
    from repro.faults import FaultScript, Injection, make_behavior
    from repro.workload import Criticality

    workload = avionics_workload(n_ife_channels=4, ife_wcet=5000)
    system = BTRSystem(
        workload, full_mesh_topology(9, bandwidth=4e8, speed=2.0),
        BTRConfig(f=2, seed=31),
    )
    system.prepare()
    shedding = next(
        sorted(p) for p in system.strategy.patterns()
        if len(p) == 2
        and Criticality.D not in system.strategy.plan_for(p).kept_levels
    )
    script = FaultScript([
        Injection(200_000 + i * 400_000, shedding[i],
                  make_behavior("commission"))
        for i in range(2)
    ])
    result = system.run(60, script)
    shed_events = result.trace.of_kind(TaskShed)
    assert shed_events, "no shedding recorded"
    names = [e.task for e in shed_events]
    assert len(names) == len(set(names))  # once per task
    assert all(e.criticality in ("C", "D") for e in shed_events)


def test_heartbeats_flood_to_all_nodes():
    system = make_system(topology=ring_topology(7, bandwidth=1e8))
    result = system.run(6)
    # After a few periods, every agent holds fresh liveness for every
    # *other* node, even non-neighbours (heartbeats flood).
    for node_id, agent in system.agents.items():
        for other in system.topology.nodes:
            if other == node_id:
                continue
            assert agent._node_alive(other), (node_id, other)


def test_crashed_node_liveness_decays():
    system = make_system()
    victim = system.compromisable_nodes()[0]
    result = system.run(N_PERIODS, SingleFaultAdversary(
        at=FAULT_AT, kind="crash"))
    observer = next(n for n in system.agents if n != victim)
    agent = system.agents[observer]
    assert not agent._node_alive(victim)
    # Everyone else is still fresh at the end of the run.
    for other in system.topology.nodes:
        if other not in (victim, observer):
            assert agent._node_alive(other)


def test_omission_node_that_heartbeats_is_still_isolated():
    """A Byzantine node keeping its heartbeat while omitting data must not
    hide behind the link-vs-node excuse forever."""
    system = BTRSystem(
        industrial_workload(), ring_topology(7, bandwidth=1e8),
        BTRConfig(f=1, seed=29),
    )
    system.prepare()
    victim = system.compromisable_nodes()[0]
    result = system.run(40, FaultScript([
        Injection(FAULT_AT, victim, OmissionFault(drop_probability=1.0)),
    ]))
    verdict = btr_verdict(result, R_us=system.budget.total_us)
    assert verdict.holds
    correct = [fs for n, fs in result.final_fault_sets.items()
               if n != victim]
    assert all(fs == frozenset({victim}) for fs in correct)
