"""Tests for the canned scenario library."""

import pytest

from repro import BTRConfig, BTRSystem
from repro.analysis import btr_verdict, smallest_sufficient_R
from repro.faults import SCENARIOS, ScenarioError, stage
from repro.net import full_mesh_topology
from repro.workload import industrial_workload


@pytest.fixture(scope="module")
def f1_system():
    system = BTRSystem(industrial_workload(),
                       full_mesh_topology(7, bandwidth=1e8),
                       BTRConfig(f=1, seed=83))
    system.prepare()
    return system


@pytest.fixture(scope="module")
def f2_system():
    system = BTRSystem(industrial_workload(),
                       full_mesh_topology(9, bandwidth=1e8),
                       BTRConfig(f=2, seed=83))
    system.prepare()
    return system


def test_unknown_scenario_rejected(f1_system):
    with pytest.raises(ScenarioError, match="unknown scenario"):
        stage("gremlins", f1_system)


def test_paced_double_requires_f2(f1_system):
    with pytest.raises(ScenarioError, match="f >= 2"):
        stage("paced_double", f1_system)


@pytest.mark.parametrize("name", [
    "single_commission", "single_crash", "single_omission",
    "checker_host_crash", "rogue_clock",
])
def test_node_fault_scenarios_recover(f1_system, name):
    scenario = stage(name, f1_system)
    assert scenario.description
    result = f1_system.run(36, scenario.script,
                           link_script=scenario.link_script or None)
    verdict = btr_verdict(result, R_us=f1_system.budget.total_us)
    assert verdict.holds, (name, [
        (v.flow, v.period_index, v.status) for v in verdict.violations[:4]])


def test_flood_plus_fault_needs_a_two_fault_budget(f2_system):
    """The flooder now counts against the fault budget (its endorsements
    make it attributable), so covering fire + a real fault is a two-fault
    attack and needs f >= 2."""
    scenario = stage("flood_plus_fault", f2_system)
    result = f2_system.run(48, scenario.script)
    verdict = btr_verdict(result, R_us=f2_system.budget.total_us)
    assert verdict.holds, [
        (v.flow, v.period_index, v.status) for v in verdict.violations[:4]]
    faulty = set(result.fault_times())
    correct = [fs for n, fs in result.final_fault_sets.items()
               if n not in faulty]
    assert all(fs <= faulty for fs in correct)


def test_paced_double_recovers(f2_system):
    scenario = stage("paced_double", f2_system)
    assert len(scenario.script) == 2
    result = f2_system.run(60, scenario.script)
    verdict = btr_verdict(result, R_us=f2_system.budget.total_us)
    assert verdict.holds


def test_link_death_is_masked_on_full_mesh(f1_system):
    scenario = stage("link_death", f1_system)
    assert scenario.link_script and not len(scenario.script)
    result = f1_system.run(36, scenario.script,
                           link_script=scenario.link_script)
    assert smallest_sufficient_R(result) == 0  # redundancy masks it


def test_scenarios_registry_is_complete():
    for name in SCENARIOS:
        assert isinstance(name, str) and name
    assert len(SCENARIOS) >= 8
