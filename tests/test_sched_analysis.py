"""Tests for classical schedulability analysis and mixed criticality."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import (
    MCTask,
    PeriodicTask,
    deadline_monotonic_order,
    edf_schedulable,
    keep_levels,
    response_time,
    rm_schedulable,
    rm_utilization_bound,
    rta_schedulable,
    shed_workload,
    shedding_ladder,
    total_utilization,
    vestal_schedulable,
)
from repro.workload import Criticality, avionics_workload


def T(name, c, p, d=None):
    return PeriodicTask(name=name, wcet=c, period=p, deadline=d)


# ---------------------------------------------------------------- classical


def test_utilization_sum():
    tasks = [T("a", 1, 4), T("b", 1, 2)]
    assert total_utilization(tasks) == pytest.approx(0.75)


def test_edf_bound():
    assert edf_schedulable([T("a", 1, 2), T("b", 1, 2)])
    assert not edf_schedulable([T("a", 1, 2), T("b", 2, 3)])


def test_edf_with_capacity():
    assert edf_schedulable([T("a", 1, 2)], capacity=0.5)
    assert not edf_schedulable([T("a", 2, 3)], capacity=0.5)


def test_rm_bound_decreases_to_ln2():
    assert rm_utilization_bound(1) == pytest.approx(1.0)
    assert rm_utilization_bound(2) == pytest.approx(0.8284, abs=1e-3)
    assert rm_utilization_bound(1000) == pytest.approx(0.6934, abs=1e-3)


def test_rm_bound_rejects_nonpositive():
    with pytest.raises(ValueError):
        rm_utilization_bound(0)


def test_rm_sufficient_test():
    assert rm_schedulable([T("a", 1, 4), T("b", 1, 5)])
    assert rm_schedulable([])


def test_rta_classic_example():
    # Classic three-task example: schedulable despite U > RM bound.
    tasks = [T("a", 1, 4), T("b", 2, 6), T("c", 3, 12)]
    assert total_utilization(tasks) > rm_utilization_bound(3)
    assert rta_schedulable(tasks)
    assert response_time(0, tasks) == 1
    assert response_time(1, tasks) == 3
    # c: r = 3 + ceil(r/4)*1 + ceil(r/6)*2 -> fixed point at 10.
    assert response_time(2, tasks) == 10


def test_rta_detects_deadline_miss():
    tasks = [T("a", 3, 5), T("b", 3, 6)]
    assert response_time(1, tasks) is None
    assert not rta_schedulable(tasks)


def test_deadline_monotonic_order():
    tasks = [T("late", 1, 10, d=9), T("soon", 1, 10, d=3)]
    ordered = deadline_monotonic_order(tasks)
    assert [t.name for t in ordered] == ["soon", "late"]


def test_periodic_task_validation():
    with pytest.raises(ValueError):
        T("bad", 0, 5)
    with pytest.raises(ValueError):
        T("bad", 5, 5, d=4)


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.integers(1, 5), st.integers(10, 100)),
    min_size=1, max_size=6,
))
def test_property_rm_implies_rta(params):
    tasks = deadline_monotonic_order([
        T(f"t{i}", c, p) for i, (c, p) in enumerate(params)
    ])
    # The sufficient RM test must never accept an RTA-infeasible set.
    if rm_schedulable(tasks):
        assert rta_schedulable(tasks)


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.integers(1, 5), st.integers(10, 100)),
    min_size=1, max_size=6,
))
def test_property_rta_implies_edf_bound(params):
    tasks = deadline_monotonic_order([
        T(f"t{i}", c, p) for i, (c, p) in enumerate(params)
    ])
    # Fixed-priority feasible => U <= 1 (EDF optimality on one CPU).
    if rta_schedulable(tasks):
        assert edf_schedulable(tasks)


# ----------------------------------------------------------- mixed-criticality


def mc(name, crit, period, lo, hi=None):
    budgets = {Criticality.D: lo}
    if hi is not None:
        budgets[Criticality.A] = hi
    return MCTask(name=name, criticality=crit, period=period, budgets=budgets)


def test_vestal_all_levels_fit():
    tasks = [
        mc("ctrl", Criticality.A, 10, lo=2, hi=4),
        mc("ife", Criticality.D, 10, lo=5),
    ]
    # Level D: 2/10 + 5/10 = 0.7 ok; level A: 4/10 = 0.4 ok.
    assert vestal_schedulable(tasks)


def test_vestal_rejects_high_level_overload():
    tasks = [
        mc("ctrl", Criticality.A, 10, lo=2, hi=11),
    ]
    assert not vestal_schedulable(tasks)


def test_vestal_capacity_parameter():
    tasks = [mc("x", Criticality.B, 10, lo=4)]
    assert vestal_schedulable(tasks, capacity=0.5)
    assert not vestal_schedulable(tasks, capacity=0.3)


def test_budget_fallback_uses_most_pessimistic_lower_level():
    task = mc("x", Criticality.A, 10, lo=3)
    assert task.budget_at(Criticality.A) == 3


def test_keep_levels():
    assert keep_levels(1) == {Criticality.A}
    assert keep_levels(4) == set(Criticality.ordered())
    with pytest.raises(ValueError):
        keep_levels(5)


def test_shed_workload_drops_low_criticality():
    g = avionics_workload()
    shed = shed_workload(g, {Criticality.A})
    assert "ctrl_law" in shed.tasks
    assert "ife_head" not in shed.tasks
    shed.validate()
    # All surviving sink flows are criticality A.
    assert all(shed.flow_criticality(f) == Criticality.A
               for f in shed.sink_flows())


def test_shed_workload_keeps_upstream_dependencies():
    g = avionics_workload()
    shed = shed_workload(g, {Criticality.A})
    # ctrl_law depends on nav (criticality B) via autopilot; nav must stay.
    assert "nav" in shed.tasks


def test_shedding_ladder_is_monotone():
    g = avionics_workload()
    ladder = shedding_ladder(g)
    sizes = [len(w.tasks) for w in ladder]
    assert sizes[0] == len(g.tasks)
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
    for rung in ladder:
        rung.validate()
