"""Tests for the global schedule synthesizer and lane model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Router, full_mesh_topology, line_topology
from repro.sched import (
    AssignmentError,
    LaneFractions,
    LaneModel,
    NodeSchedule,
    ScheduleEntry,
    ScheduleError,
    synthesize,
)
from repro.sim import DeterministicRandom, MessageKind, ms
from repro.workload import (
    DataflowGraph,
    Flow,
    Task,
    pipeline_workload,
    random_workload,
)


def deploy(workload, topo):
    topo.place_endpoints_round_robin(workload.sources, workload.sinks)
    return Router(topo)


# -------------------------------------------------------------------- table


def test_schedule_entry_validation():
    with pytest.raises(ScheduleError):
        ScheduleEntry("t", 10, 10)
    with pytest.raises(ScheduleError):
        ScheduleEntry("t", -1, 5)


def test_node_schedule_rejects_overlap():
    sched = NodeSchedule("n0", period=100)
    sched.add(ScheduleEntry("a", 0, 50))
    with pytest.raises(ScheduleError):
        sched.add(ScheduleEntry("b", 40, 60))
    sched.add(ScheduleEntry("b", 50, 60))
    assert len(sched) == 2
    assert sched.utilization() == pytest.approx(0.6)


def test_node_schedule_rejects_period_overrun():
    sched = NodeSchedule("n0", period=100)
    with pytest.raises(ScheduleError):
        sched.add(ScheduleEntry("a", 90, 110))


# --------------------------------------------------------------------- lanes


def test_lane_fractions_validation():
    with pytest.raises(ValueError):
        LaneFractions(data=0.9, state=0.2, evidence=0.15, control=0.15)
    with pytest.raises(ValueError):
        LaneFractions(data=0.0, state=0.5, evidence=0.25, control=0.25)


def test_lane_model_share_splits_among_endpoints():
    topo = line_topology(2, bandwidth=1e6)
    model = LaneModel(topo, LaneFractions(data=0.5))
    link = topo.links["l0"]
    assert model.share(link, MessageKind.DATA) == pytest.approx(0.25)


def test_lane_model_install_allocates_everything():
    topo = line_topology(3)
    LaneModel(topo).install()
    for link in topo.links.values():
        for sender in link.endpoints:
            for kind in (MessageKind.DATA, MessageKind.STATE,
                         MessageKind.EVIDENCE, MessageKind.CONTROL):
                assert link.lane(sender, kind) is not None
        assert link.allocated_fraction <= 1.0 + 1e-9


def test_lane_model_install_is_idempotent():
    topo = line_topology(2)
    model = LaneModel(topo)
    model.install()
    model.install()
    assert topo.links["l0"].allocated_fraction <= 1.0 + 1e-9


def test_transmission_us_ceils():
    topo = line_topology(2, bandwidth=1e6)  # 1 bit/us raw
    model = LaneModel(topo, LaneFractions(data=0.5))  # 0.25 bits/us per lane
    link = topo.links["l0"]
    assert model.transmission_us(link, MessageKind.DATA, 100) == 400


# ----------------------------------------------------------------- synthesis


def test_pipeline_on_two_nodes_is_feasible():
    wl = pipeline_workload(n_stages=2, period=ms(20), wcet=500)
    topo = line_topology(2, bandwidth=1e7)
    router = deploy(wl, topo)
    schedule = synthesize(
        wl, {"pipeline.t0": "n0", "pipeline.t1": "n1"}, topo, router)
    assert schedule.feasible, schedule.violations
    # Both tasks have slots; t1 starts after t0's output arrives.
    slot0 = schedule.slot_for("pipeline.t0")
    slot1 = schedule.slot_for("pipeline.t1")
    assert slot0 is not None and slot1 is not None
    assert slot1.start >= slot0.finish


def test_same_node_flows_have_zero_network_delay():
    wl = pipeline_workload(n_stages=2, period=ms(20), wcet=500)
    topo = line_topology(2, bandwidth=1e7)
    router = deploy(wl, topo)
    schedule = synthesize(
        wl, {"pipeline.t0": "n0", "pipeline.t1": "n0"}, topo, router)
    slot0 = schedule.slot_for("pipeline.t0")
    slot1 = schedule.slot_for("pipeline.t1")
    assert slot1.start == slot0.finish
    # Internal flow generated no transmissions unless endpoints demand it.
    internal = [t for t in schedule.transmissions if t.flow == "pipeline.f0"]
    assert internal == []


def test_node_contention_serializes_tasks():
    period = ms(50)
    wl = DataflowGraph(
        period=period,
        tasks=[Task("a", wcet=1000), Task("b", wcet=1000)],
        flows=[
            Flow("in_a", src="s", dst="a"),
            Flow("in_b", src="s", dst="b"),
            Flow("out_a", src="a", dst="k", deadline=period),
            Flow("out_b", src="b", dst="k", deadline=period),
        ],
        sources=["s"], sinks=["k"],
    )
    topo = line_topology(2, bandwidth=1e7)
    topo.place_endpoint("s", "n0")
    topo.place_endpoint("k", "n0")
    router = Router(topo)
    schedule = synthesize(wl, {"a": "n0", "b": "n0"}, topo, router)
    slots = sorted(
        (schedule.slot_for(t) for t in ("a", "b")), key=lambda s: s.start)
    assert slots[0].finish <= slots[1].start


def test_unassigned_task_raises():
    wl = pipeline_workload(n_stages=2)
    topo = line_topology(2)
    router = deploy(wl, topo)
    with pytest.raises(AssignmentError):
        synthesize(wl, {"pipeline.t0": "n0"}, topo, router)


def test_assignment_to_excluded_node_raises():
    wl = pipeline_workload(n_stages=1)
    topo = line_topology(2)
    router = deploy(wl, topo)
    with pytest.raises(AssignmentError):
        synthesize(wl, {"pipeline.t0": "n1"}, topo, router,
                   excluding={"n1"})


def test_deadline_violation_reported_not_raised():
    wl = pipeline_workload(n_stages=1, period=ms(20), wcet=500,
                           deadline=ms(1))
    # Slow link: the sink flow cannot make a 1 ms deadline across it.
    topo = line_topology(2, bandwidth=1e4)
    topo.place_endpoint("pipeline.sensor", "n0")
    topo.place_endpoint("pipeline.actuator", "n1")
    router = Router(topo)
    schedule = synthesize(wl, {"pipeline.t0": "n0"}, topo, router)
    assert not schedule.feasible
    assert any("deadline" in v for v in schedule.violations)


def test_wcet_overrun_of_period_reported():
    wl = pipeline_workload(n_stages=1, period=ms(1), wcet=ms(2))
    topo = line_topology(2, bandwidth=1e7)
    router = deploy(wl, topo)
    schedule = synthesize(wl, {"pipeline.t0": "n0"}, topo, router)
    assert any("period" in v for v in schedule.violations)


def test_routing_failure_reported_as_violation():
    wl = pipeline_workload(n_stages=2, period=ms(20))
    topo = line_topology(3, bandwidth=1e7)
    topo.place_endpoint("pipeline.sensor", "n0")
    topo.place_endpoint("pipeline.actuator", "n0")
    router = Router(topo)
    # t1 on n2 but n1 (the only route) is excluded -> no path.
    schedule = synthesize(
        wl, {"pipeline.t0": "n0", "pipeline.t1": "n2"}, topo, router,
        excluding={"n1"})
    assert not schedule.feasible
    assert any("no route" in v for v in schedule.violations)


def test_slower_node_stretches_execution():
    wl = pipeline_workload(n_stages=1, period=ms(20), wcet=1000)
    topo = line_topology(2, bandwidth=1e7, speed=1.0, control_share=0.5)
    router = deploy(wl, topo)
    schedule = synthesize(wl, {"pipeline.t0": "n0"}, topo, router)
    slot = schedule.slot_for("pipeline.t0")
    # fg speed = 0.5 -> 1000 us wcet takes 2000 us.
    assert slot.duration == 2000


def test_flow_size_override_changes_transmission():
    wl = pipeline_workload(n_stages=2, period=ms(20))
    topo = line_topology(2, bandwidth=1e6)
    router = deploy(wl, topo)
    assignment = {"pipeline.t0": "n0", "pipeline.t1": "n1"}
    base = synthesize(wl, assignment, topo, router)
    bigger = synthesize(wl, assignment, topo, router,
                        flow_sizes={"pipeline.f0": 50_000})
    hop_base = base.final_hop("pipeline.f0")
    hop_big = bigger.final_hop("pipeline.f0")
    assert hop_big.arrival - hop_big.start > hop_base.arrival - hop_base.start
    assert bigger.total_bits() > base.total_bits()


def test_link_contention_serializes_transmissions():
    period = ms(50)
    wl = DataflowGraph(
        period=period,
        tasks=[Task("a", wcet=100), Task("b", wcet=100)],
        flows=[
            Flow("in_a", src="s", dst="a", size_bits=128),
            Flow("in_b", src="s", dst="b", size_bits=128),
            Flow("out_a", src="a", dst="k", deadline=period,
                 size_bits=10_000),
            Flow("out_b", src="b", dst="k", deadline=period,
                 size_bits=10_000),
        ],
        sources=["s"], sinks=["k"],
    )
    topo = line_topology(2, bandwidth=1e6)
    topo.place_endpoint("s", "n0")
    topo.place_endpoint("k", "n1")
    router = Router(topo)
    schedule = synthesize(wl, {"a": "n0", "b": "n0"}, topo, router)
    hops = sorted((t for t in schedule.transmissions
                   if t.flow in ("out_a", "out_b")), key=lambda t: t.start)
    assert len(hops) == 2
    # Same sender lane: second starts no earlier than first finishes
    # (arrival - propagation = serialization end).
    link = topo.links["l0"]
    assert hops[1].start >= hops[0].arrival - link.propagation_us


def test_makespan_and_utilization():
    wl = pipeline_workload(n_stages=2, period=ms(20), wcet=500)
    topo = line_topology(2, bandwidth=1e7)
    router = deploy(wl, topo)
    schedule = synthesize(
        wl, {"pipeline.t0": "n0", "pipeline.t1": "n1"}, topo, router)
    assert schedule.makespan() > 0
    util = schedule.utilization_by_node()
    assert util["n0"] > 0 and util["n1"] > 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_synthesis_is_deterministic(seed):
    rng = DeterministicRandom(seed)
    wl = random_workload(rng, n_tasks=8, n_layers=2, period=ms(100))
    topo = full_mesh_topology(4, bandwidth=1e7)
    router = deploy(wl, topo)
    nodes = topo.node_ids()
    assignment = {t: nodes[i % len(nodes)]
                  for i, t in enumerate(sorted(wl.tasks))}
    s1 = synthesize(wl, assignment, topo, router)
    s2 = synthesize(wl, assignment, topo, router)
    assert s1.arrivals == s2.arrivals
    assert [
        (t.flow, t.start, t.arrival) for t in s1.transmissions
    ] == [(t.flow, t.start, t.arrival) for t in s2.transmissions]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_feasible_schedules_meet_all_deadlines(seed):
    rng = DeterministicRandom(seed)
    wl = random_workload(rng, n_tasks=6, n_layers=2, period=ms(100))
    topo = full_mesh_topology(3, bandwidth=1e7)
    router = deploy(wl, topo)
    nodes = topo.node_ids()
    assignment = {t: nodes[i % len(nodes)]
                  for i, t in enumerate(sorted(wl.tasks))}
    schedule = synthesize(wl, assignment, topo, router)
    if schedule.feasible:
        for flow in wl.sink_flows():
            assert schedule.arrivals[flow.name] <= flow.deadline
        for name in wl.tasks:
            slot = schedule.slot_for(name)
            assert slot is not None and slot.finish <= wl.period
