"""Tests for strategy serialization (the installed artifact, §4.1)."""

import json

import pytest

from repro import BTRConfig, BTRSystem
from repro.core.planner import (
    plan_from_dict,
    plan_to_dict,
    strategy_from_json,
    strategy_to_json,
)
from repro.faults import SingleFaultAdversary
from repro.net import full_mesh_topology
from repro.workload import industrial_workload


@pytest.fixture(scope="module")
def system():
    s = BTRSystem(industrial_workload(),
                  full_mesh_topology(7, bandwidth=1e8),
                  BTRConfig(f=1, seed=13))
    s.prepare()
    return s


def test_plan_roundtrip_preserves_everything(system):
    plan = system.strategy.nominal
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored.pattern == plan.pattern
    assert restored.mode == plan.mode
    assert restored.assignment == plan.assignment
    assert restored.routes == plan.routes
    assert restored.kept_levels == plan.kept_levels
    assert restored.schedule.arrivals == plan.schedule.arrivals
    assert restored.schedule.feasible == plan.schedule.feasible
    for instance in plan.augmented.tasks:
        assert (restored.schedule.slot_for(instance)
                == plan.schedule.slot_for(instance))
    # Graphs revalidate cleanly.
    restored.workload.validate()
    restored.augmented.validate()


def test_plan_dict_is_json_stable(system):
    plan = system.strategy.plan_for(
        frozenset({sorted(system.strategy.covered_nodes)[0]}))
    text = json.dumps(plan_to_dict(plan), sort_keys=True)
    again = json.dumps(plan_to_dict(plan), sort_keys=True)
    assert text == again
    assert plan_from_dict(json.loads(text)).assignment == plan.assignment


def test_strategy_roundtrip(system):
    text = strategy_to_json(system.strategy)
    restored = strategy_from_json(text)
    assert restored.f == system.strategy.f
    assert restored.covered_nodes == system.strategy.covered_nodes
    assert len(restored) == len(system.strategy)
    for pattern in system.strategy.patterns():
        a = system.strategy.plan_for(pattern)
        b = restored.plan_for(pattern)
        assert a.assignment == b.assignment
        assert a.routes == b.routes


def test_strategy_json_rejects_unknown_version(system):
    data = json.loads(strategy_to_json(system.strategy))
    data["format_version"] = 999
    with pytest.raises(ValueError, match="unsupported"):
        strategy_from_json(json.dumps(data))


def test_deserialized_strategy_runs_identically(system):
    """The shipped artifact drives the runtime exactly like the original."""
    adversary = SingleFaultAdversary(at=220_000, kind="commission")
    original = system.run(20, adversary)

    clone = BTRSystem(industrial_workload(),
                      full_mesh_topology(7, bandwidth=1e8),
                      BTRConfig(f=1, seed=13))
    clone.prepare()
    clone.strategy = strategy_from_json(strategy_to_json(system.strategy))
    replayed = clone.run(20, adversary)

    assert ([(o.time, o.flow, o.period_index, o.value)
             for o in original.outputs()]
            == [(o.time, o.flow, o.period_index, o.value)
                for o in replayed.outputs()])
    assert original.final_fault_sets == replayed.final_fault_sets


def test_property_serialization_roundtrips_random_strategies():
    from hypothesis import given, settings, strategies as st

    from repro.core.planner import build_strategy
    from repro.core.planner.plan import PlanningError
    from repro.core.planner.placement import PlacementError
    from repro.net import Router
    from repro.sim import DeterministicRandom, ms
    from repro.workload import random_workload

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def check(seed):
        workload = random_workload(DeterministicRandom(seed), n_tasks=6,
                                   n_layers=2, period=ms(100))
        topology = full_mesh_topology(7, bandwidth=1e8)
        topology.place_endpoints_round_robin(workload.sources,
                                             workload.sinks)
        try:
            strategy = build_strategy(workload, topology,
                                      Router(topology), f=1)
        except (PlanningError, PlacementError):
            return
        restored = strategy_from_json(strategy_to_json(strategy))
        for pattern in strategy.patterns():
            a, b = strategy.plan_for(pattern), restored.plan_for(pattern)
            assert a.assignment == b.assignment
            assert a.routes == b.routes
            assert a.schedule.arrivals == b.schedule.arrivals

    check()
