"""Region-sharded event core: exact merge, byte-identical traces.

The sharded executor (``repro.perf.shardcore``, gated behind
``BTRConfig(sharded_core=True, shards=N)``) partitions the simulator
heap by topology region and promises the exact global (time, seq)
execution order of the single-loop reference. These tests pin that
promise from five sides —

* byte-identity: full BTR runs produce identical trace fingerprints,
  event gauges, and verdict-relevant outputs for shards in {1, 2, R}
  and versus the non-sharded reference, under geo scenarios with fault
  and link scripts — while the shard machinery demonstrably engages;
* engine semantics: property-tested random event graphs execute in the
  same order on every shard count, and cancellation / peek / step /
  compaction behave exactly like the base engine;
* planning: geo topologies partition into connected per-region blocks
  whose concatenation is the global sorted node order, with a strictly
  positive WAN lookahead; flat topologies are refused;
* delivery hooks: conforming (delay-only) hooks compose with sharding
  byte-identically; accelerating hooks are rejected at the offending
  call; pool sweeps reject hooks outright;
* sweep hygiene: scenario link scripts must not leak residual loss
  into later runs over the shared topology (the order-independence
  regression behind the pool sweep's byte-equality gate).
"""

import dataclasses

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro import BTRConfig, BTRSystem
from repro.faults.scenarios import ScenarioError, geo_scenario, stage
from repro.net import full_mesh_topology, geo_topology
from repro.net.topology import TopologyError
from repro.perf.batchcore import run_sweep
from repro.perf.fastpath import trace_fingerprint
from repro.perf.shardcore import (
    GeoSweepSpec,
    ShardedSimulator,
    ShardingError,
    guarded_delivery_hook,
    plan_shards,
    run_sweep_pool,
    sharded_simulator,
    system_for_spec,
)
from repro.sim.time import NEVER
from repro.workload import industrial_workload, stretched_workload

N_PERIODS = 6

SPEC = GeoSweepSpec(regions=3, nodes_per_region=4, n_periods=N_PERIODS,
                    trace_mode="full", scenario="geo:3x4")


@pytest.fixture(scope="module")
def proto():
    """One prepared geo system; variants share its frozen plan."""
    system = system_for_spec(SPEC)
    system.prepare()
    return system


def variant(proto, seed=42, **overrides):
    """A prepared system with config overrides, sharing the prototype's
    planning artifacts (sharding flags never enter planning)."""
    config = dataclasses.replace(proto.config, seed=seed, **overrides)
    system = BTRSystem(proto.workload, proto.topology, config)
    system.router = proto.router
    system.lane_model = proto.lane_model
    system.strategy = proto.strategy
    system.budget = proto.budget
    system.switch_lead_us = proto.switch_lead_us
    return system


def run_one(system, scenario=SPEC.scenario):
    scn = stage(scenario, system)
    return system.run(N_PERIODS, adversary=scn.script,
                      link_script=scn.link_script or None)


# ------------------------------------------------------- byte identity


class TestByteIdentity:
    """Full traces identical for shards in {1, 2, R} vs the reference."""

    @pytest.mark.parametrize("shards", [1, 2, 0])
    def test_sharded_matches_reference(self, proto, shards):
        ref_sys = variant(proto, sharded_core=False, shards=0)
        ref = run_one(ref_sys)
        shd_sys = variant(proto, sharded_core=True, shards=shards)
        shd = run_one(shd_sys)
        assert (trace_fingerprint(shd.trace)
                == trace_fingerprint(ref.trace))
        assert shd_sys.sim.events_executed == ref_sys.sim.events_executed
        assert shd.final_modes == ref.final_modes
        assert shd.final_fault_sets == ref.final_fault_sets
        stats = shd_sys.sim.shard_stats()
        expected = {1: 1, 2: 2, 0: SPEC.regions}[shards]
        assert stats["shards"] == expected
        if expected > 1:
            # The machinery actually engaged: windows were cut and
            # cross-shard (WAN) events were routed.
            assert stats["shard_windows"] > expected
            assert stats["cross_shard_events"] > 0
            assert stats["lookahead_us"] > 0
        gauges = shd.metrics["gauges"]
        assert gauges["shards"] == expected
        assert gauges["shard_windows"] == stats["shard_windows"]

    def test_scenario_seed_matrix(self, proto):
        for scenario in ("gateway_crash", "wan_brownout"):
            for seed in (42, 202):
                ref = run_one(variant(proto, seed=seed, sharded_core=False,
                                      shards=0), scenario)
                shd = run_one(variant(proto, seed=seed), scenario)
                assert (trace_fingerprint(shd.trace)
                        == trace_fingerprint(ref.trace)), (scenario, seed)


# ------------------------------------------------- engine order property


def _node_shard(grouping):
    """node -> shard for three regions r0/r1/r2, two nodes each."""
    return {f"r{r}n{i}": shard
            for r, shard in enumerate(grouping) for i in range(2)}


def _run_schedule(events, grouping):
    """Execute a generated event graph; return the (time, tag) log."""
    shard_count = max(grouping) + 1
    node_shard = _node_shard(grouping)
    sim = ShardedSimulator(seed=7, node_shard=node_shard,
                           shard_count=shard_count, lookahead_us=50)
    log = []

    def fire(tag, children):
        def callback():
            log.append((sim.now, tag))
            for child_node, delay, child_tag in children:
                sim.schedule_to(sim.shard_of(child_node),
                                sim.now + delay,
                                fire(child_tag, []))
        return callback

    nodes = sorted(node_shard)
    for index, (time, node_index, children) in enumerate(events):
        node = nodes[node_index % len(nodes)]
        kids = [(nodes[c % len(nodes)], d, (index, k))
                for k, (c, d) in enumerate(children)]
        sim.call_at_in(sim.shard_of(node), time, fire(index, kids))
    sim.run_until(10_000)
    return log


EVENT_GRAPHS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2_000),       # time
        st.integers(min_value=0, max_value=5),           # node
        st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                           st.integers(min_value=1, max_value=400)),
                 max_size=3),                            # children
    ),
    min_size=1, max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(events=EVENT_GRAPHS)
def test_property_merge_order_stable_across_shard_counts(events):
    """The same event graph executes in the same order for every
    shard count — including cross-shard children scheduled below the
    current horizon."""
    reference = _run_schedule(events, (0, 0, 0))
    assert _run_schedule(events, (0, 0, 1)) == reference
    assert _run_schedule(events, (0, 1, 2)) == reference


@settings(max_examples=15, deadline=None)
@given(regions=st.integers(min_value=2, max_value=4),
       npr=st.integers(min_value=2, max_value=5),
       gateways=st.integers(min_value=1, max_value=2))
def test_property_geo_partitions_connected_with_positive_lookahead(
        regions, npr, gateways):
    topo = geo_topology(regions, npr, gateways=gateways)
    names = topo.region_names()
    assert len(names) == regions
    # Regions partition the node set into connected local meshes.
    seen = []
    for name in names:
        members = sorted(topo.regions[name])
        assert len(members) == npr
        local = topo.graph.subgraph(members)
        assert nx.is_connected(local)
        seen.extend(members)
    assert sorted(seen) == sorted(topo.node_ids())
    # Lookahead is strictly positive and equals the WAN minimum.
    plan = plan_shards(topo)
    assert plan.shard_count == regions
    assert plan.lookahead_us == topo.min_wan_latency_us() > 0
    # Shard node blocks concatenate to the global sorted order — the
    # property the per-shard tick splitting relies on.
    blocks = []
    for shard in range(plan.shard_count):
        blocks.extend(sorted(
            n for n, s in plan.node_shard.items() if s == shard))
    assert blocks == sorted(topo.node_ids())


# --------------------------------------------------- planning and config


class TestPlanning:
    def test_flat_topology_is_refused(self):
        with pytest.raises(ShardingError, match="no region tags"):
            plan_shards(full_mesh_topology(5, bandwidth=1e8))

    def test_shard_requests_above_region_count_clamp(self):
        topo = geo_topology(3, 2)
        assert plan_shards(topo, 17).shard_count == 3
        plan = plan_shards(topo, 2)
        assert plan.shard_count == 2
        # Grouping keeps contiguous runs of the canonical region order.
        assert plan.shard_regions == (("r0", "r1"), ("r2",))

    def test_single_shard_has_zero_lookahead(self):
        plan = plan_shards(geo_topology(2, 2), 1)
        assert plan.shard_count == 1
        assert plan.lookahead_us == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="requires runtime_fastpath"):
            BTRConfig(sharded_core=True, runtime_fastpath=False)
        with pytest.raises(ValueError, match="only meaningful"):
            BTRConfig(shards=2)
        with pytest.raises(ValueError, match=">= 0"):
            BTRConfig(sharded_core=True, shards=-1)

    def test_min_wan_latency_requires_wan_links(self):
        with pytest.raises(TopologyError, match="no WAN links"):
            full_mesh_topology(4, bandwidth=1e8).min_wan_latency_us()


# ----------------------------------------------------- engine semantics


class TestEngineSemantics:
    def _sim(self):
        return sharded_simulator(geo_topology(3, 2), seed=3)

    def test_cancellation_and_peek_cross_shards(self):
        sim = self._sim()
        log = []
        keep = sim.call_at_in(0, 100, lambda: log.append("a"))
        drop = sim.call_at_in(1, 50, lambda: log.append("b"))
        sim.call_at_in(2, 150, lambda: log.append("c"))
        assert sim.peek_next_time() == 50
        drop.cancel()
        assert drop.cancelled and not keep.cancelled
        assert sim.peek_next_time() == 100
        assert sim.pending_events() == 2
        while sim.step():
            pass
        assert log == ["a", "c"]
        assert sim.peek_next_time() == NEVER

    def test_compaction_keeps_survivors(self):
        sim = self._sim()
        log = []
        handles = [sim.call_at_in(i % 3, 10 + i, lambda i=i: log.append(i))
                   for i in range(90)]
        for handle in handles[1:80]:
            handle.cancel()
        # Compaction ran at least once (the residue is below the
        # total >= 64 re-trigger threshold, like the base engine).
        assert sim._cancelled_in_queue < 79
        sim.run_until(1_000)
        assert log == [0] + list(range(80, 90))

    def test_past_scheduling_is_rejected(self):
        from repro.sim.engine import SimulationError
        sim = self._sim()
        sim.call_at_in(0, 10, lambda: None)
        sim.run_until(20)
        with pytest.raises(SimulationError):
            sim.call_at_in(1, 5, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_to(1, 5, lambda: None)


# ------------------------------------------------------- delivery hooks


class TestDeliveryHooks:
    def test_delaying_hook_composes_byte_identically(self, proto):
        def hook(sender, receiver, arrival):
            return arrival + (1 if sender.endswith("n0") else 0)

        ref = variant(proto, sharded_core=False, shards=0).run(
            N_PERIODS, delivery_hook=hook)
        shd = variant(proto).run(N_PERIODS, delivery_hook=hook)
        assert (trace_fingerprint(shd.trace)
                == trace_fingerprint(ref.trace))

    def test_accelerating_hook_fails_loudly_under_sharding(self, proto):
        with pytest.raises(ShardingError, match="accelerated"):
            variant(proto).run(N_PERIODS,
                               delivery_hook=lambda s, r, t: t - 1)

    def test_guarded_hook_passes_through_conforming_results(self):
        guarded = guarded_delivery_hook(lambda s, r, t: t + 5)
        assert guarded("a", "b", 100) == 105
        with pytest.raises(ShardingError):
            guarded_delivery_hook(lambda s, r, t: t - 1)("a", "b", 100)

    def test_pool_sweep_rejects_hooks(self):
        with pytest.raises(ShardingError, match="process boundaries"):
            run_sweep_pool(SPEC, (42, 43), workers=2,
                           delivery_hook=lambda s, r, t: t)


# ------------------------------------------------------------ pool sweep


class TestPoolSweep:
    def test_pool_matches_serial_reference(self, proto, tmp_path):
        seeds = (42, 202)
        serial = {run.seed: run.fingerprint
                  for run in run_sweep(proto, seeds, N_PERIODS,
                                       scenario=SPEC.scenario)}
        spec = dataclasses.replace(SPEC, cache=str(tmp_path))
        out = run_sweep_pool(spec, seeds, workers=2)
        assert [row["seed"] for row in out["runs"]] == list(seeds)
        for row in out["runs"]:
            assert row["fingerprint"] == serial[row["seed"]], row["seed"]
        assert out["workers"] == 2

    def test_empty_seed_list_is_a_noop(self):
        out = run_sweep_pool(SPEC, (), workers=4)
        assert out == {"runs": [], "workers": 0, "pooled": False}

    def test_unknown_workload_is_refused(self):
        spec = dataclasses.replace(SPEC, workload="nope")
        with pytest.raises(ShardingError, match="unknown workload"):
            system_for_spec(spec)


# ------------------------------------------------------- sweep hygiene


class TestSweepHygiene:
    def test_link_scripts_restore_residual_loss(self, proto):
        system = variant(proto, sharded_core=False, shards=0)
        link = system.topology.wan_links()[0]
        before = link.loss_probability
        system.run(N_PERIODS,
                   link_script=[(100_000, link.link_id, 0.5)])
        assert link.loss_probability == before

    def test_sibling_runs_are_order_independent(self, proto):
        solo = run_one(variant(proto, seed=202))
        run_one(variant(proto, seed=101))
        again = run_one(variant(proto, seed=202))
        assert (trace_fingerprint(again.trace)
                == trace_fingerprint(solo.trace))


# --------------------------------------------------------- geo scenarios


class TestGeoScenarios:
    def test_shape_mismatch_is_refused(self, proto):
        with pytest.raises(ScenarioError, match="does not match"):
            geo_scenario(proto, 4, 4)
        with pytest.raises(ScenarioError, match="does not match"):
            geo_scenario(proto, 3, 20)

    def test_flat_topology_is_refused(self):
        system = BTRSystem(
            industrial_workload(), full_mesh_topology(5, bandwidth=1e8),
            BTRConfig(f=1, seed=1))
        with pytest.raises(ScenarioError, match="no regions"):
            geo_scenario(system, 3, 4)
        with pytest.raises(ScenarioError, match="no WAN links"):
            stage("wan_brownout", system)

    def test_any_geo_name_pattern_stages(self, proto):
        scn = stage("geo:3x4", proto)
        assert scn.name == "geo:3x4"
        assert scn.script.injections
        assert scn.link_script
        victim = scn.script.injections[0].node
        browned = proto.topology.links[scn.link_script[0][1]]
        assert victim not in browned.endpoints
        with pytest.raises(ScenarioError):
            stage("geo:9x9", proto)


# ------------------------------------------------------ stretched loads


class TestStretchedWorkload:
    def test_stretch_scales_periods_and_deadlines_only(self):
        base = industrial_workload()
        slow = stretched_workload(base, 10)
        assert slow.period == base.period * 10
        assert slow.name == f"{base.name}x10"
        base_flows = {f.name: f for f in base.flows}
        for flow in slow.flows:
            ref = base_flows[flow.name]
            if ref.deadline is None:
                assert flow.deadline is None
            else:
                assert flow.deadline == ref.deadline * 10
        assert {t.name: t.wcet for t in slow.tasks.values()} \
            == {t.name: t.wcet for t in base.tasks.values()}

    def test_stretch_of_one_is_identity(self):
        base = industrial_workload()
        assert stretched_workload(base, 1) is base

    def test_stretch_below_one_is_refused(self):
        from repro.workload import WorkloadError
        with pytest.raises(WorkloadError):
            stretched_workload(industrial_workload(), 0)
