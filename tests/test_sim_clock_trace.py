"""Unit tests for local clocks, clock sync, time helpers, and traces."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    ClockSync,
    FaultInjected,
    LocalClock,
    MS,
    OutputProduced,
    S,
    Simulator,
    Trace,
    format_time,
    ms,
    seconds,
    to_seconds,
    us,
)


def test_perfect_clock_tracks_true_time():
    clock = LocalClock()
    assert clock.read(0) == 0
    assert clock.read(12345) == 12345


def test_offset_shifts_reading():
    clock = LocalClock(offset=100)
    assert clock.read(0) == 100
    assert clock.error(500) == 100


def test_drift_accumulates():
    clock = LocalClock(drift_ppm=100.0)  # 100 µs per second fast
    assert clock.read(1 * S) == 1 * S + 100
    assert clock.error(10 * S) == 1000


def test_negative_drift_runs_slow():
    clock = LocalClock(drift_ppm=-50.0)
    assert clock.error(1 * S) == -50


def test_adjust_steps_clock():
    clock = LocalClock(offset=500)
    clock.adjust(true_time=1000, correction=-500)
    assert clock.error(1000) == 0


def test_synchronize_to_reference():
    clock = LocalClock(drift_ppm=200.0, offset=999)
    clock.synchronize_to(true_time=5 * S, reference=5 * S)
    assert clock.error(5 * S) == 0
    # Drift resumes from the new anchor.
    assert clock.error(6 * S) == 200


def test_clock_sync_bounds_error_across_rounds():
    sim = Simulator()
    clocks = [LocalClock(drift_ppm=d) for d in (150.0, -150.0, 80.0)]
    sync = ClockSync(interval=100 * MS)
    for c in clocks:
        sync.register(c)
    sync.install(sim)
    epsilon = sync.epsilon(max_drift_ppm=150.0)
    sim.run_until(2 * S)
    for c in clocks:
        assert abs(c.error(sim.now)) <= epsilon


def test_clock_sync_invalid_interval():
    with pytest.raises(ValueError):
        ClockSync(interval=0)


@given(st.floats(min_value=-500, max_value=500),
       st.integers(min_value=0, max_value=10 * S))
def test_property_drift_error_bounded_by_ppm(drift_ppm, t):
    clock = LocalClock(drift_ppm=drift_ppm)
    bound = abs(drift_ppm) * 1e-6 * t + 1
    assert abs(clock.error(t)) <= bound


# --------------------------------------------------------------- time units


def test_time_conversions():
    assert seconds(5) == 5_000_000
    assert ms(1.5) == 1500
    assert us(2.4) == 2
    assert to_seconds(2_500_000) == pytest.approx(2.5)


def test_format_time_units():
    assert format_time(500) == "500us"
    assert format_time(1500) == "1.500ms"
    assert format_time(2_500_000) == "2.500s"


# -------------------------------------------------------------------- trace


def test_trace_records_and_filters_by_kind():
    trace = Trace()
    trace.record(FaultInjected(time=10, node="a", fault_kind="crash"))
    trace.record(OutputProduced(time=20, sink="s", flow="f", period_index=0,
                                value=1, deadline=25, criticality="A"))
    assert len(trace) == 2
    assert [e.node for e in trace.of_kind(FaultInjected)] == ["a"]
    assert len(trace.outputs()) == 1


def test_trace_rejects_out_of_order():
    trace = Trace()
    trace.record(FaultInjected(time=10, node="a", fault_kind="crash"))
    with pytest.raises(ValueError):
        trace.record(FaultInjected(time=5, node="b", fault_kind="crash"))


def test_trace_between_is_half_open():
    trace = Trace()
    for t in (10, 20, 30):
        trace.record(FaultInjected(time=t, node="a", fault_kind="crash"))
    assert [e.time for e in trace.between(10, 30)] == [10, 20]


def test_trace_last():
    trace = Trace()
    assert trace.last(FaultInjected) is None
    trace.record(FaultInjected(time=10, node="a", fault_kind="crash"))
    trace.record(FaultInjected(time=20, node="b", fault_kind="omission"))
    assert trace.last(FaultInjected).node == "b"
