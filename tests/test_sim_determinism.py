"""Whole-stack determinism and trace-integrity properties.

Reproducibility is a design requirement (DESIGN.md §5): same seed, same
trace, bit for bit — across every layer, with faults, drift, and mode
switches in play. These tests pin that.
"""

import pytest

from repro import BTRConfig, BTRSystem
from repro.baselines import BFTSystem, ZZSystem
from repro.faults import PacingAdversary, SingleFaultAdversary
from repro.net import full_mesh_topology, ring_topology
from repro.sim import (
    MessageDelivered,
    MessageSent,
    OutputProduced,
    TaskExecuted,
)
from repro.workload import industrial_workload


def fingerprint(result):
    """A run's observable behaviour, fully ordered."""
    events = []
    for e in result.trace:
        if isinstance(e, OutputProduced):
            events.append(("out", e.time, e.flow, e.period_index, e.value))
        elif isinstance(e, MessageSent):
            events.append(("snd", e.time, e.src, e.dst, e.kind, e.size_bits))
        elif isinstance(e, TaskExecuted):
            events.append(("exe", e.time, e.node, e.task, e.period_index))
    return events


def btr_run(seed, adversary=None, topo_factory=None, drift=50.0):
    system = BTRSystem(
        industrial_workload(),
        (topo_factory or (lambda: full_mesh_topology(7, bandwidth=1e8)))(),
        BTRConfig(f=1, seed=seed, clock_drift_ppm=drift),
    )
    system.prepare()
    return system.run(20, adversary)


def test_full_trace_identical_across_processes_worth_of_state():
    a = fingerprint(btr_run(3, SingleFaultAdversary(at=220_000,
                                                    kind="commission")))
    b = fingerprint(btr_run(3, SingleFaultAdversary(at=220_000,
                                                    kind="commission")))
    assert a == b


def test_different_seeds_differ_under_random_adversary():
    # Fault-free runs are intentionally seed-independent in their event
    # timing (drift only affects signed timestamps); the seed drives the
    # adversary and clock assignment.
    from repro.faults import RandomAdversary

    adversary = RandomAdversary(horizon=600_000, k=1, min_time=100_000)
    a = fingerprint(btr_run(1, adversary))
    b = fingerprint(btr_run(2, adversary))
    assert a != b


def test_trace_is_time_ordered_everywhere():
    result = btr_run(5, SingleFaultAdversary(at=220_000, kind="crash"))
    times = [e.time for e in result.trace]
    assert times == sorted(times)


def test_every_delivery_has_a_matching_send():
    result = btr_run(5)
    sends = {}
    for e in result.trace.of_kind(MessageSent):
        sends[(e.src, e.dst, e.kind)] = sends.get(
            (e.src, e.dst, e.kind), 0) + 1
    for e in result.trace.of_kind(MessageDelivered):
        key = (e.src, e.dst, e.kind)
        assert sends.get(key, 0) > 0, f"delivery without send: {key}"


def test_ring_runs_deterministic_under_pacing():
    def run():
        system = BTRSystem(industrial_workload(),
                           ring_topology(7, bandwidth=1e8),
                           BTRConfig(f=1, seed=11))
        system.prepare()
        return fingerprint(system.run(
            24, SingleFaultAdversary(at=220_000, kind="omission")))

    assert run() == run()


@pytest.mark.parametrize("cls", [BFTSystem, ZZSystem])
def test_baseline_traces_deterministic(cls):
    def run():
        system = cls(industrial_workload(),
                     full_mesh_topology(8, bandwidth=1e8), f=1, seed=9)
        system.prepare()
        return fingerprint(system.run(12))

    assert run() == run()


def test_f2_pacing_deterministic():
    def run():
        system = BTRSystem(industrial_workload(),
                           full_mesh_topology(9, bandwidth=1e8),
                           BTRConfig(f=2, seed=21))
        system.prepare()
        adversary = PacingAdversary(start=200_000, interval=300_000, k=2,
                                    kind="crash")
        return fingerprint(system.run(24, adversary))

    assert run() == run()
