"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import NEVER, SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(30, lambda: order.append("c"))
    sim.call_at(10, lambda: order.append("a"))
    sim.call_at(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_in_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.call_at(100, lambda label=label: order.append(label))
    sim.run()
    assert order == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.call_at(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_call_after_is_relative():
    sim = Simulator()
    times = []
    sim.call_at(100, lambda: sim.call_after(50, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150]


def test_run_until_stops_at_boundary_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.call_at(10, lambda: fired.append(10))
    sim.call_at(100, lambda: fired.append(100))
    sim.run_until(50)
    assert fired == [10]
    assert sim.now == 50
    sim.run_until(200)
    assert fired == [10, 100]


def test_event_at_run_until_boundary_fires():
    sim = Simulator()
    fired = []
    sim.call_at(50, lambda: fired.append(50))
    sim.run_until(50)
    assert fired == [50]


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1, lambda: None)


def test_cancellation_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.call_at(10, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_at(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.call_at(10, lambda: None)
    sim.call_at(20, lambda: None)
    h1.cancel()
    assert sim.peek_next_time() == 20


def test_peek_next_time_empty_is_never():
    sim = Simulator()
    assert sim.peek_next_time() == NEVER


def test_pending_events_counts_live_events():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    h = sim.call_at(20, lambda: None)
    h.cancel()
    assert sim.pending_events() == 1


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.call_after(5, lambda: order.append("second"))

    sim.call_at(10, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 15


def test_events_executed_counter():
    sim = Simulator()
    for t in (1, 2, 3):
        sim.call_at(t, lambda: None)
    sim.run()
    assert sim.events_executed == 3


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
def test_property_events_always_fire_in_nondecreasing_time(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.call_at(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(times)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_property_same_seed_same_rng_stream(seed):
    a = Simulator(seed=seed)
    b = Simulator(seed=seed)
    assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]


def test_rng_fork_is_order_independent():
    a = Simulator(seed=7)
    b = Simulator(seed=7)
    # Consume some of b's parent stream first; forks must still agree.
    b.rng.random()
    fork_a = a.rng.fork("faults")
    fork_b = b.rng.fork("faults")
    assert [fork_a.random() for _ in range(3)] == [fork_b.random() for _ in range(3)]


def test_rng_forks_with_different_labels_differ():
    sim = Simulator(seed=7)
    x = sim.rng.fork("x").random()
    y = sim.rng.fork("y").random()
    assert x != y
