"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import NEVER, SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(30, lambda: order.append("c"))
    sim.call_at(10, lambda: order.append("a"))
    sim.call_at(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_in_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.call_at(100, lambda label=label: order.append(label))
    sim.run()
    assert order == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.call_at(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_call_after_is_relative():
    sim = Simulator()
    times = []
    sim.call_at(100, lambda: sim.call_after(50, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150]


def test_run_until_stops_at_boundary_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.call_at(10, lambda: fired.append(10))
    sim.call_at(100, lambda: fired.append(100))
    sim.run_until(50)
    assert fired == [10]
    assert sim.now == 50
    sim.run_until(200)
    assert fired == [10, 100]


def test_event_at_run_until_boundary_fires():
    sim = Simulator()
    fired = []
    sim.call_at(50, lambda: fired.append(50))
    sim.run_until(50)
    assert fired == [50]


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1, lambda: None)


def test_cancellation_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.call_at(10, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_at(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.call_at(10, lambda: None)
    sim.call_at(20, lambda: None)
    h1.cancel()
    assert sim.peek_next_time() == 20


def test_peek_next_time_empty_is_never():
    sim = Simulator()
    assert sim.peek_next_time() == NEVER


def test_pending_events_counts_live_events():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    h = sim.call_at(20, lambda: None)
    h.cancel()
    assert sim.pending_events() == 1


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.call_after(5, lambda: order.append("second"))

    sim.call_at(10, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 15


def test_events_executed_counter():
    sim = Simulator()
    for t in (1, 2, 3):
        sim.call_at(t, lambda: None)
    sim.run()
    assert sim.events_executed == 3


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=50))
def test_property_events_always_fire_in_nondecreasing_time(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.call_at(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(times)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_property_same_seed_same_rng_stream(seed):
    a = Simulator(seed=seed)
    b = Simulator(seed=seed)
    assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]


def test_rng_fork_is_order_independent():
    a = Simulator(seed=7)
    b = Simulator(seed=7)
    # Consume some of b's parent stream first; forks must still agree.
    b.rng.random()
    fork_a = a.rng.fork("faults")
    fork_b = b.rng.fork("faults")
    assert [fork_a.random() for _ in range(3)] == [fork_b.random() for _ in range(3)]


def test_rng_forks_with_different_labels_differ():
    sim = Simulator(seed=7)
    x = sim.rng.fork("x").random()
    y = sim.rng.fork("y").random()
    assert x != y


# ------------------------------------------------------- fast heap / guards


def test_run_is_reentrancy_guarded():
    sim = Simulator()
    seen = []

    def reenter():
        with pytest.raises(SimulationError, match="re-entrantly"):
            sim.run()
        seen.append(sim.now)

    sim.call_at(5, reenter)
    sim.run()
    assert seen == [5]
    # The guard releases: a fresh run() afterwards works.
    sim.call_at(10, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5, 10]


def test_run_until_is_reentrancy_guarded_with_fast_heap():
    sim = Simulator(fast_heap=True)

    def reenter():
        with pytest.raises(SimulationError, match="re-entrantly"):
            sim.run_until(100)

    sim.call_at(1, reenter)
    sim.run_until(50)
    assert sim.now == 50


@given(st.lists(st.integers(min_value=0, max_value=10**6),
                min_size=1, max_size=60),
       st.sets(st.integers(min_value=0, max_value=59)))
def test_property_fast_heap_matches_legacy_order(times, cancel_idx):
    """The tuple-based fast heap fires the same events in the same order
    as the legacy _Event heap, including under cancellation."""
    logs = {}
    for fast in (False, True):
        sim = Simulator(seed=3, fast_heap=fast)
        log = logs.setdefault(fast, [])
        handles = []
        for i, t in enumerate(times):
            handles.append(
                sim.call_at(t, lambda i=i: log.append((sim.now, i))))
        for i in cancel_idx:
            if i < len(handles):
                handles[i].cancel()
        sim.run()
    assert logs[True] == logs[False]


def test_schedule_interleaves_with_call_at_in_seq_order():
    """schedule() (handle-free fast-path entries) shares the sequence
    counter with call_at, so ties at one timestamp fire in submission
    order regardless of which API queued them."""
    sim = Simulator(fast_heap=True)
    fired = []
    sim.call_at(7, lambda: fired.append("a"))
    sim.schedule(7, lambda: fired.append("b"))
    sim.call_at(7, lambda: fired.append("c"))
    sim.schedule(5, lambda: fired.append("early"))
    assert sim.pending_events() == 4
    sim.run()
    assert fired == ["early", "a", "b", "c"]
    assert sim.events_executed == 4


def test_peek_next_time_skips_cancelled_fast_heap():
    """The fast heap's peek must drain cancelled head entries exactly
    like the legacy heap does, not report a dead event's time."""
    for fast in (False, True):
        sim = Simulator(fast_heap=fast)
        h1 = sim.call_at(10, lambda: None)
        h2 = sim.call_at(20, lambda: None)
        sim.call_at(30, lambda: None)
        h1.cancel()
        h2.cancel()
        assert sim.peek_next_time() == 30, f"fast_heap={fast}"
        assert sim.pending_events() == 1, f"fast_heap={fast}"


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("call_at"), st.integers(0, 500)),
        st.tuples(st.just("call_after"), st.integers(0, 100)),
        st.tuples(st.just("schedule"), st.integers(0, 500)),
        st.tuples(st.just("cancel"), st.integers(0, 79)),
        st.tuples(st.just("step"), st.just(0)),
        st.tuples(st.just("run_until"), st.integers(0, 600)),
        st.tuples(st.just("observe"), st.just(0)),
    ),
    min_size=1, max_size=80,
)


@given(_OPS)
def test_property_heap_modes_observably_identical(ops):
    """Random op programs leave both heap representations in observably
    identical states: same fire log, same ``peek_next_time`` and
    ``pending_events`` after every operation, same clock and executed
    count. This pins the cancelled-entry handling of the fast heap's
    peek/pending paths to the legacy heap's behaviour."""
    observed = {}
    for fast in (False, True):
        sim = Simulator(seed=11, fast_heap=fast)
        log = observed.setdefault(fast, [])
        handles = []
        for op, arg in ops:
            if op == "call_at":
                target = max(arg, sim.now)
                handles.append(sim.call_at(
                    target, lambda t=target: log.append(("fire", t))))
            elif op == "call_after":
                handles.append(sim.call_after(
                    arg, lambda a=arg: log.append(("after", sim.now))))
            elif op == "schedule":
                target = max(arg, sim.now)
                sim.schedule(target,
                             lambda t=target: log.append(("sched", t)))
            elif op == "cancel" and handles:
                handles[arg % len(handles)].cancel()
            elif op == "step":
                log.append(("step", sim.step()))
            elif op == "run_until":
                if arg >= sim.now:
                    sim.run_until(arg)
            log.append(("obs", sim.now, sim.peek_next_time(),
                        sim.pending_events(), sim.events_executed))
        sim.run()
        log.append(("final", sim.now, sim.events_executed,
                    sim.pending_events(), sim.peek_next_time()))
    assert observed[True] == observed[False]


def test_fast_heap_compaction_spares_schedule_entries():
    sim = Simulator(fast_heap=True)
    fired = []
    # Enough cancellable timers to trigger compaction (>= 64 queued,
    # cancelled majority), with bare schedule() entries interleaved.
    handles = [sim.call_at(100 + i, lambda: fired.append("timer"))
               for i in range(80)]
    for i in range(10):
        sim.schedule(50 + i, lambda i=i: fired.append(i))
    for h in handles:
        h.cancel()
    sim.run()
    assert fired == list(range(10))
