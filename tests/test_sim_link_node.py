"""Unit tests for links (guarded bandwidth) and nodes (CPU lanes)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Link,
    Message,
    MessageKind,
    Node,
    ReservationError,
    Simulator,
)


def make_msg(src="a", dst="b", size=1000, kind=MessageKind.DATA):
    return Message(src=src, dst=dst, kind=kind, payload=None, size_bits=size)


def test_lane_allocation_respects_capacity():
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    link.allocate_lane("a", MessageKind.DATA, 0.6)
    link.allocate_lane("b", MessageKind.DATA, 0.4)
    with pytest.raises(ReservationError):
        link.allocate_lane("a", MessageKind.EVIDENCE, 0.01)


def test_lane_reallocation_replaces_share():
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    link.allocate_lane("a", MessageKind.DATA, 0.6)
    link.allocate_lane("a", MessageKind.DATA, 0.3)  # shrink
    assert link.allocated_fraction == pytest.approx(0.3)
    link.allocate_lane("b", MessageKind.DATA, 0.7)


def test_allocate_lane_for_foreign_node_raises():
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    with pytest.raises(ReservationError):
        link.allocate_lane("c", MessageKind.DATA, 0.1)


def test_release_lane_frees_capacity():
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    link.allocate_lane("a", MessageKind.DATA, 1.0)
    link.release_lane("a", MessageKind.DATA)
    link.allocate_lane("b", MessageKind.DATA, 1.0)


def test_transmission_delay_matches_bandwidth():
    # 1 Mbps, full share -> 1 bit per µs; 1000 bits -> 1000 µs + propagation.
    sim = Simulator()
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6, propagation_us=10)
    link.allocate_lane("a", MessageKind.DATA, 1.0)
    arrivals = []
    link.transmit(sim, make_msg(size=1000), "a", "b",
                  deliver=lambda m, t: arrivals.append(t))
    sim.run()
    assert arrivals == [1010]


def test_transmissions_serialize_on_one_lane():
    sim = Simulator()
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6, propagation_us=0)
    link.allocate_lane("a", MessageKind.DATA, 1.0)
    arrivals = []
    for _ in range(3):
        link.transmit(sim, make_msg(size=100), "a", "b",
                      deliver=lambda m, t: arrivals.append(t))
    sim.run()
    assert arrivals == [100, 200, 300]


def test_guardian_isolates_lanes():
    """A babbling sender cannot delay another sender's lane."""
    sim = Simulator()
    link = Link("bus", ("a", "b", "c"), bandwidth_bps=1e6, propagation_us=0)
    link.allocate_lane("a", MessageKind.DATA, 0.5)
    link.allocate_lane("b", MessageKind.DATA, 0.5)
    # "a" babbles: floods its own lane.
    for _ in range(100):
        link.transmit(sim, make_msg(src="a", dst="c", size=10_000), "a", "c",
                      deliver=lambda m, t: None)
    arrivals = []
    link.transmit(sim, make_msg(src="b", dst="c", size=500), "b", "c",
                  deliver=lambda m, t: arrivals.append(t))
    sim.run()
    # b's 500-bit frame at 0.5 Mbps lane = 1000 µs, unaffected by a's flood.
    assert arrivals == [1000]


def test_transmit_without_lane_raises():
    sim = Simulator()
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    with pytest.raises(ReservationError):
        link.transmit(sim, make_msg(), "a", "b", deliver=lambda m, t: None)


def test_transmit_to_non_endpoint_raises():
    sim = Simulator()
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    link.allocate_lane("a", MessageKind.DATA, 1.0)
    with pytest.raises(ReservationError):
        link.transmit(sim, make_msg(dst="z"), "a", "z", deliver=lambda m, t: None)


def test_lossy_link_drops_and_reports():
    sim = Simulator(seed=1)
    link = Link("l1", ("a", "b"), bandwidth_bps=1e9, loss_probability=1.0)
    link.allocate_lane("a", MessageKind.DATA, 1.0)
    delivered, dropped = [], []
    link.transmit(sim, make_msg(), "a", "b",
                  deliver=lambda m, t: delivered.append(m),
                  on_drop=lambda m: dropped.append(m))
    sim.run()
    assert delivered == []
    assert len(dropped) == 1


def test_lossless_by_default():
    sim = Simulator(seed=1)
    link = Link("l1", ("a", "b"), bandwidth_bps=1e9)
    link.allocate_lane("a", MessageKind.DATA, 1.0)
    delivered = []
    for _ in range(50):
        link.transmit(sim, make_msg(), "a", "b",
                      deliver=lambda m, t: delivered.append(m))
    sim.run()
    assert len(delivered) == 50


@given(
    size=st.integers(min_value=1, max_value=10**6),
    share=st.floats(min_value=0.01, max_value=1.0),
)
def test_property_transmission_time_positive_and_monotone(size, share):
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    link.allocate_lane("a", MessageKind.DATA, share)
    t1 = link.transmission_time("a", MessageKind.DATA, size)
    t2 = link.transmission_time("a", MessageKind.DATA, size * 2)
    assert t1 >= 1
    assert t2 >= t1


# --------------------------------------------------------------------- node


def test_node_cpu_lane_scales_work_by_speed():
    sim = Simulator()
    node = Node("n1", speed=2.0, control_share=0.5)
    # fg lane speed = 2.0 * 0.5 = 1.0 -> 100 us work takes 100 us
    done = []
    node.execute(sim, 100, callback=lambda: done.append(sim.now))
    sim.run()
    assert done == [100]


def test_node_lanes_are_independent():
    sim = Simulator()
    node = Node("n1", speed=1.0, control_share=0.5)
    done = {}
    node.execute(sim, 50, callback=lambda: done.setdefault("fg", sim.now), lane="fg")
    node.execute(sim, 50, callback=lambda: done.setdefault("ctrl", sim.now),
                 lane="ctrl")
    sim.run()
    # Both lanes at speed 0.5 -> both complete at 100, in parallel.
    assert done == {"fg": 100, "ctrl": 100}


def test_node_cpu_serializes_within_lane():
    sim = Simulator()
    node = Node("n1", speed=1.0, control_share=0.5)  # fg speed 0.5
    finishes = []
    node.execute(sim, 50, callback=lambda: finishes.append(sim.now))
    node.execute(sim, 50, callback=lambda: finishes.append(sim.now))
    sim.run()
    assert finishes == [100, 200]


def test_crashed_node_drops_deliveries_and_refuses_work():
    sim = Simulator()
    node = Node("n1")
    got = []
    node.add_handler(lambda m, t: got.append(m))
    node.crashed = True
    node.deliver(make_msg(), 0)
    assert got == []
    with pytest.raises(RuntimeError):
        node.execute(sim, 10)


def test_attach_foreign_link_raises():
    node = Node("n1")
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    with pytest.raises(ValueError):
        node.attach(link)


def test_link_to_finds_shared_link():
    node = Node("a")
    link = Link("l1", ("a", "b"), bandwidth_bps=1e6)
    node.attach(link)
    assert node.link_to("b") is link
    assert node.link_to("z") is None


def test_invalid_control_share_raises():
    with pytest.raises(ValueError):
        Node("n1", control_share=0.0)
    with pytest.raises(ValueError):
        Node("n1", control_share=1.0)


def test_lane_utilization():
    sim = Simulator()
    node = Node("n1", speed=1.0, control_share=0.5)
    node.execute(sim, 50)  # 100 us on fg lane at speed 0.5
    sim.run()
    assert node.lanes["fg"].utilization(1000) == pytest.approx(0.1)
