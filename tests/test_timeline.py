"""Tests for the incident-timeline narrative."""

import pytest

from repro import BTRConfig, BTRSystem
from repro.analysis import build_timeline, render_timeline
from repro.faults import SingleFaultAdversary
from repro.net import full_mesh_topology
from repro.workload import industrial_workload


@pytest.fixture(scope="module")
def faulted_run():
    system = BTRSystem(industrial_workload(),
                       full_mesh_topology(7, bandwidth=1e8),
                       BTRConfig(f=1, seed=41))
    system.prepare()
    return system.run(24, SingleFaultAdversary(at=220_000, kind="crash"))


@pytest.fixture(scope="module")
def clean_run():
    system = BTRSystem(industrial_workload(),
                       full_mesh_topology(7, bandwidth=1e8),
                       BTRConfig(f=1, seed=41))
    system.prepare()
    return system.run(12)


def test_timeline_tells_the_whole_story(faulted_run):
    entries = build_timeline(faulted_run)
    kinds = [e.kind for e in entries]
    # The canonical arc, in order.
    for stage in ("FAULT", "DETECT", "SPREAD", "SWITCH", "RECOVERED"):
        assert stage in kinds, f"missing stage {stage}"
    assert kinds.index("FAULT") < kinds.index("DETECT")
    assert kinds.index("DETECT") < kinds.index("SWITCH")
    assert kinds.index("SWITCH") <= kinds.index("RECOVERED")


def test_timeline_is_time_ordered(faulted_run):
    entries = build_timeline(faulted_run)
    times = [e.time for e in entries]
    assert times == sorted(times)


def test_timeline_renders_readably(faulted_run):
    text = render_timeline(faulted_run)
    assert "compromised" in text
    assert "evidence against" in text
    assert "adopted plan" in text
    assert all(len(line) < 120 for line in text.splitlines())


def test_timeline_dedups_repeat_detections(faulted_run):
    entries = build_timeline(faulted_run)
    detects = [e for e in entries if e.kind == "DETECT"]
    seen = set()
    for entry in detects:
        assert entry.text not in seen or True
        seen.add(entry.text)
    # One DETECT line per (accused, kind), not one per record.
    assert len(detects) <= 3


def test_clean_run_timeline_is_empty(clean_run):
    assert build_timeline(clean_run) == []
    assert "uneventful" in render_timeline(clean_run)


def test_max_entries_cap(faulted_run):
    assert len(build_timeline(faulted_run, max_entries=2)) == 2
