"""The tutorial's end-to-end flow (docs/TUTORIAL.md), pinned as a test."""

from repro import BTRConfig, BTRSystem
from repro.analysis import (
    WaterTank,
    btr_verdict,
    render_timeline,
    smallest_sufficient_R,
    timeliness,
)
from repro.core.planner import strategy_from_json, strategy_to_json
from repro.core.runtime.budget import recovery_bound_for_deadline
from repro.faults import FaultScript, Injection, OmissionFault
from repro.net import dual_star_topology
from repro.sim import ms
from repro.workload import Criticality, DataflowGraph, Flow, Task


def tutorial_workload() -> DataflowGraph:
    return DataflowGraph(
        period=ms(20),
        tasks=[
            Task("filter", wcet=400, criticality=Criticality.A,
                 state_bits=2048),
            Task("control", wcet=1200, criticality=Criticality.A,
                 state_bits=8192),
            Task("logging", wcet=900, criticality=Criticality.C,
                 state_bits=32768),
        ],
        flows=[
            Flow("sense", src="sensor", dst="filter", size_bits=256),
            Flow("clean", src="filter", dst="control", size_bits=512),
            Flow("act", src="control", dst="actuator",
                 deadline=ms(10), criticality=Criticality.A, size_bits=256),
            Flow("log_in", src="control", dst="logging", size_bits=2048),
            Flow("log_out", src="logging", dst="archive",
                 deadline=ms(20), criticality=Criticality.C,
                 size_bits=4096),
        ],
        sources=["sensor"], sinks=["actuator", "archive"],
    )


def test_tutorial_end_to_end():
    workload = tutorial_workload()
    topology = dual_star_topology(6, bandwidth=2e8)
    topology.place_endpoint("sensor", "n0")
    topology.place_endpoint("actuator", "n5")
    topology.place_endpoint("archive", "n5")

    # R := D/f from the plant physics.
    dt = 0.02
    d_periods = WaterTank().max_tolerable_outage(dt)
    r_us = recovery_bound_for_deadline(int(d_periods * dt * 1e6), f=1)

    system = BTRSystem(workload, topology,
                       BTRConfig(f=1, R_us=r_us, seed=7))
    budget = system.prepare()
    assert budget.total_us <= r_us

    # The installable artifact round-trips.
    artifact = strategy_to_json(system.strategy)
    assert len(strategy_from_json(artifact)) == len(system.strategy)

    result = system.run(n_periods=60, adversary=FaultScript([
        Injection(310_000, "n2", OmissionFault()),
    ]))
    verdict = btr_verdict(result, R_us=budget.total_us)
    assert verdict.holds
    assert smallest_sufficient_R(result) <= budget.total_us
    assert timeliness(result).miss_rate < 0.05
    # The timeline renders (may be a masked non-event, which is fine).
    assert isinstance(render_timeline(result), str)
