"""Tests for the static plan/mode-graph verifier (``repro.verify``).

Strategy: plan the canonical seed scenario once, assert it verifies
clean, then hand-corrupt *clones* of its plans — one corruption per rule
— and assert each corruption trips exactly the expected rule id.
"""

import pytest

from repro import BTRConfig, BTRSystem
from repro.core.planner import AugmentConfig, Strategy, build_strategy
from repro.core.planner.serialize import plan_from_dict, plan_to_dict
from repro.net import Router, full_mesh_topology
from repro.sched.table import ScheduleEntry
from repro.verify import (
    RULES,
    Finding,
    Report,
    Severity,
    VerificationError,
    check_mode_graph,
    check_placement,
    check_routes,
    check_schedule,
    require_clean,
    verify_plan,
    verify_strategy,
)
from repro.workload import industrial_workload


@pytest.fixture(scope="module")
def system():
    sys_ = BTRSystem(
        industrial_workload(),
        full_mesh_topology(5, bandwidth=1e8),
        BTRConfig(f=1, seed=42),
    )
    sys_.prepare()
    return sys_


def clone(plan):
    """Deep-copy a plan via its lossless serialization round-trip."""
    return plan_from_dict(plan_to_dict(plan))


def faulty_plan(system):
    """A clone of the first single-fault plan of the seed strategy."""
    for pattern in system.strategy.patterns():
        if pattern:
            return clone(system.strategy.plan_for(pattern))
    raise AssertionError("strategy has no faulty plans")


def drop_routes_touching(plan, instance):
    """Remove routes of flows produced or consumed by ``instance`` so a
    placement corruption does not also trip route.endpoint-mismatch."""
    for name in list(plan.routes):
        try:
            flow = plan.augmented.flow(name)
        except KeyError:
            continue
        if instance in (flow.src, flow.dst):
            del plan.routes[name]


def multi_hop_flow(plan):
    """(flow_name, route) of some flow routed across at least one link."""
    for name in sorted(plan.routes):
        if len(plan.routes[name]) >= 2:
            return name, plan.routes[name]
    raise AssertionError("plan has no cross-node routes")


def rules_of(findings):
    return sorted({f.rule for f in findings})


# --------------------------------------------------------------- catalogue


def test_rule_catalogue_families():
    assert RULES
    for rule_id in RULES:
        family, _, name = rule_id.partition(".")
        assert family in ("sched", "place", "route", "mode", "bound")
        assert name


def test_findings_reference_catalogued_rules_only(system):
    plan = faulty_plan(system)
    plan.routes["phantom@r0"] = [sorted(system.topology.nodes)[0]]
    for finding in check_routes(plan, system.topology):
        assert finding.rule in RULES


# -------------------------------------------------------------- clean seed


def test_seed_strategy_verifies_clean(system):
    report = verify_strategy(system.strategy, system.topology,
                             router=system.router)
    assert report.findings == []
    assert report.ok
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 0
    assert "no findings" in report.render()


def test_verify_plan_clean_on_nominal(system):
    report = verify_plan(system.strategy.nominal, system.topology)
    assert report.findings == []


# ------------------------------------------------------------ sched rules


def test_overlapping_slots_trip_sched_overlap(system):
    plan = clone(system.strategy.nominal)
    node, ns = next(
        (n, ns) for n, ns in sorted(plan.schedule.node_schedules.items())
        if ns.entries
    )
    first = ns.entries[0]
    # Bypass NodeSchedule.add's validation, as a buggy synthesizer would.
    ns.entries.append(ScheduleEntry("intruder", first.start, first.finish))
    ns.entries.sort(key=lambda e: e.start)
    assert rules_of(check_schedule(plan)) == ["sched.overlap"]


def test_period_overrun_trips_sched_overrun(system):
    plan = clone(system.strategy.nominal)
    ns = next(ns for _, ns in sorted(plan.schedule.node_schedules.items())
              if ns.entries)
    period = plan.schedule.period
    ns.entries.append(ScheduleEntry("laggard", period, period + 10))
    assert rules_of(check_schedule(plan)) == ["sched.overrun"]


def test_late_input_trips_sched_precedence(system):
    plan = clone(system.strategy.nominal)
    flow = next(
        f for f in plan.augmented.flows
        if f.dst in plan.augmented.tasks
        and plan.schedule.slot_for(f.dst) is not None
        and f.name in plan.schedule.arrivals
    )
    slot = plan.schedule.slot_for(flow.dst)
    plan.schedule.arrivals[flow.name] = slot.start + 1
    assert rules_of(check_schedule(plan)) == ["sched.precedence"]


def test_missed_deadline_trips_sched_deadline(system):
    plan = clone(system.strategy.nominal)
    flow = next(f for f in plan.augmented.sink_flows()
                if f.deadline is not None
                and f.name in plan.schedule.arrivals)
    plan.schedule.arrivals[flow.name] = flow.deadline + 1
    assert rules_of(check_schedule(plan)) == ["sched.deadline"]


# ------------------------------------------------------------ place rules


def test_missing_assignment_trips_place_unassigned(system):
    plan = clone(system.strategy.nominal)
    instance = sorted(plan.augmented.tasks)[0]
    del plan.assignment[instance]
    drop_routes_touching(plan, instance)
    findings = (check_placement(plan, system.topology)
                + check_routes(plan, system.topology))
    assert rules_of(findings) == ["place.unassigned"]


def test_ghost_host_trips_place_unknown_node(system):
    plan = clone(system.strategy.nominal)
    instance = sorted(plan.augmented.tasks)[0]
    plan.assignment[instance] = "ghost-node"
    drop_routes_touching(plan, instance)
    findings = (check_placement(plan, system.topology)
                + check_routes(plan, system.topology))
    assert rules_of(findings) == ["place.unknown-node"]


def test_instance_on_faulty_node_trips_place_faulty_host(system):
    plan = faulty_plan(system)
    bad = sorted(plan.pattern)[0]
    instance = sorted(plan.augmented.tasks)[0]
    plan.assignment[instance] = bad
    drop_routes_touching(plan, instance)
    findings = (check_placement(plan, system.topology)
                + check_routes(plan, system.topology))
    assert rules_of(findings) == ["place.faulty-host"]


def test_colocated_replicas_trip_place_replica_collision(system):
    plan = clone(system.strategy.nominal)
    # Move a replica sibling onto its primary's node.
    moved = None
    for instance in sorted(plan.assignment):
        if instance.endswith("#r1"):
            sibling = instance[: -len("#r1")] + "#r0"
            if sibling in plan.assignment:
                plan.assignment[instance] = plan.assignment[sibling]
                moved = instance
                break
    assert moved is not None
    drop_routes_touching(plan, moved)
    findings = (check_placement(plan, system.topology)
                + check_routes(plan, system.topology))
    assert rules_of(findings) == ["place.replica-collision"]


# ------------------------------------------------------------ route rules


def test_route_through_faulty_node_trips_route_faulty_node(system):
    plan = faulty_plan(system)
    bad = sorted(plan.pattern)[0]
    name, route = multi_hop_flow(plan)
    # Detour mid-route through the faulty node; endpoints stay correct
    # and the full mesh has links for both new hops.
    plan.routes[name] = [route[0], bad, *route[1:]]
    assert rules_of(check_routes(plan, system.topology)) \
        == ["route.faulty-node"]


def test_missing_link_trips_route_broken_path(system):
    plan = clone(system.strategy.nominal)
    name, route = multi_hop_flow(plan)
    plan.routes[name] = [route[0], "ghost-node", *route[1:]]
    assert rules_of(check_routes(plan, system.topology)) \
        == ["route.broken-path"]


def test_wrong_first_hop_trips_route_endpoint_mismatch(system):
    plan = clone(system.strategy.nominal)
    name, route = multi_hop_flow(plan)
    wrong = next(n for n in sorted(system.topology.nodes)
                 if n not in (route[0], route[1]))
    plan.routes[name] = [wrong, *route[1:]]
    assert rules_of(check_routes(plan, system.topology)) \
        == ["route.endpoint-mismatch"]


def test_reservation_arithmetic_trips_route_overbooked(system):
    # An absurd headroom makes the seed's own (feasible) routes exceed
    # the reservable capacity — same arithmetic, shifted admission bar.
    plan = clone(system.strategy.nominal)
    findings = check_routes(plan, system.topology, headroom=1e12)
    assert "route.overbooked" in rules_of(findings)
    assert rules_of(findings) == ["route.overbooked"]


def test_stray_route_is_a_warning_not_an_error(system):
    plan = clone(system.strategy.nominal)
    plan.routes["phantom@r0"] = [sorted(system.topology.nodes)[0]]
    report = Report(check_routes(plan, system.topology))
    assert report.rules_violated() == ["route.unknown-flow"]
    assert report.ok                       # warnings keep the plan sound
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 1


# ------------------------------------------------------------- mode rules


def test_single_replica_strategy_trips_mode_orphan_fetch():
    workload = industrial_workload()
    topology = full_mesh_topology(5, bandwidth=1e8)
    topology.place_endpoints_round_robin(workload.sources, workload.sinks)
    router = Router(topology)
    strategy = build_strategy(workload, topology, router, f=1,
                              augment_config=AugmentConfig(replicas=1))
    report = Report(check_mode_graph(strategy, topology, router=router))
    assert report.rules_violated() == ["mode.orphan-fetch"]
    assert not report.ok


def test_dropped_pattern_trips_mode_missing_plan(system):
    plans = {p: system.strategy.plan_for(p)
             for p in system.strategy.patterns()}
    victim = next(p for p in sorted(plans, key=sorted) if len(p) == 1)
    del plans[victim]
    crippled = Strategy(f=system.strategy.f, plans=plans,
                        covered_nodes=system.strategy.covered_nodes)
    findings = check_mode_graph(crippled, system.topology,
                                router=system.router)
    assert rules_of(findings) == ["mode.missing-plan"]
    assert any(sorted(victim)[0] in f.subject for f in findings)


# ------------------------------------------------- report/runner plumbing


def test_require_clean_passes_clean_reports_through(system):
    report = Report()
    assert require_clean(report) is report


def test_require_clean_raises_on_errors():
    finding = Finding(rule="sched.overlap", severity=Severity.ERROR,
                      mode="nominal", subject="n0", message="boom")
    with pytest.raises(VerificationError) as exc:
        require_clean(Report([finding]))
    assert exc.value.report.errors == [finding]
    assert "1 error(s)" in str(exc.value)


def test_require_clean_strict_raises_on_warnings():
    finding = Finding(rule="route.unknown-flow", severity=Severity.WARNING,
                      mode="nominal", subject="f", message="stray")
    require_clean(Report([finding]))  # non-strict: warnings pass
    with pytest.raises(VerificationError):
        require_clean(Report([finding]), strict=True)


def test_report_render_names_the_rule(system):
    plan = faulty_plan(system)
    bad = sorted(plan.pattern)[0]
    name, route = multi_hop_flow(plan)
    plan.routes[name] = [route[0], bad, *route[1:]]
    rendered = Report(check_routes(plan, system.topology)).render()
    assert "route.faulty-node" in rendered
    assert "1 error(s)" in rendered


def test_prepare_strict_accepts_the_seed_scenario():
    sys_ = BTRSystem(
        industrial_workload(),
        full_mesh_topology(5, bandwidth=1e8),
        BTRConfig(f=1, seed=42),
    )
    budget = sys_.prepare(strict=True)
    assert budget.total_us > 0


# ---------------------------------------------------------------- the CLI


def test_cli_verify_passes_seed_scenario(capsys):
    from repro.cli import main
    rc = main(["verify", "--workload", "industrial",
               "--topology", "fullmesh:5", "--f", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no findings" in out


def test_cli_verify_rejects_missing_strategy_file(tmp_path, capsys):
    from repro.cli import main
    rc = main(["verify", "--strategy", str(tmp_path / "nope.json")])
    assert rc == 2
    assert "cannot read strategy file" in capsys.readouterr().err


def test_cli_verify_rules_prints_catalogue(capsys):
    from repro.cli import main
    assert main(["verify", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out
