"""Tests for the dataflow workload model and generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import DeterministicRandom, ms
from repro.workload import (
    Criticality,
    DataflowGraph,
    Flow,
    Task,
    WorkloadError,
    automotive_workload,
    avionics_workload,
    compute_output,
    industrial_workload,
    pipeline_workload,
    random_workload,
    sensor_reading,
)


# --------------------------------------------------------------- criticality


def test_criticality_ordering():
    assert Criticality.A > Criticality.B > Criticality.C > Criticality.D
    assert Criticality.ordered() == [
        Criticality.A, Criticality.B, Criticality.C, Criticality.D
    ]
    assert Criticality.shedding_order()[0] == Criticality.D


def test_criticality_min_max():
    levels = [Criticality.C, Criticality.A, Criticality.D]
    assert max(levels) == Criticality.A
    assert min(levels) == Criticality.D


# --------------------------------------------------------------------- task


def test_task_validation():
    with pytest.raises(ValueError):
        Task("bad", wcet=0)
    with pytest.raises(ValueError):
        Task("bad", wcet=10, state_bits=-1)


def test_reference_semantics_deterministic():
    assert sensor_reading("s", 3) == sensor_reading("s", 3)
    assert sensor_reading("s", 3) != sensor_reading("s", 4)
    a = compute_output("t", 0, [1, 2, 3])
    assert a == compute_output("t", 0, [3, 1, 2])  # order-independent
    assert a != compute_output("t", 1, [1, 2, 3])
    assert a != compute_output("u", 0, [1, 2, 3])


# ----------------------------------------------------------------- dataflow


def simple_graph(**kwargs):
    defaults = dict(
        period=ms(20),
        tasks=[Task("t1", wcet=100), Task("t2", wcet=100)],
        flows=[
            Flow("in", src="src", dst="t1"),
            Flow("mid", src="t1", dst="t2"),
            Flow("out", src="t2", dst="sink", deadline=ms(10)),
        ],
        sources=["src"],
        sinks=["sink"],
    )
    defaults.update(kwargs)
    return DataflowGraph(**defaults)


def test_valid_graph_builds():
    g = simple_graph()
    assert g.topological_order() == ["t1", "t2"]
    assert [f.name for f in g.sink_flows()] == ["out"]
    assert [f.name for f in g.inputs_of("t2")] == ["mid"]
    assert [f.name for f in g.outputs_of("t1")] == ["mid"]


def test_cycle_detected():
    with pytest.raises(WorkloadError, match="cycle"):
        simple_graph(flows=[
            Flow("in", src="src", dst="t1"),
            Flow("a", src="t1", dst="t2"),
            Flow("b", src="t2", dst="t1"),
            Flow("out", src="t2", dst="sink", deadline=ms(10)),
        ])


def test_task_without_output_rejected():
    with pytest.raises(WorkloadError, match="no outputs"):
        simple_graph(flows=[
            Flow("in", src="src", dst="t1"),
            Flow("in2", src="src", dst="t2"),
            Flow("out", src="t2", dst="sink", deadline=ms(10)),
        ])


def test_sink_flow_requires_deadline():
    with pytest.raises(WorkloadError, match="deadline"):
        simple_graph(flows=[
            Flow("in", src="src", dst="t1"),
            Flow("mid", src="t1", dst="t2"),
            Flow("out", src="t2", dst="sink"),
        ])


def test_deadline_must_fit_period():
    with pytest.raises(WorkloadError, match="exceeds"):
        simple_graph(flows=[
            Flow("in", src="src", dst="t1"),
            Flow("mid", src="t1", dst="t2"),
            Flow("out", src="t2", dst="sink", deadline=ms(21)),
        ])


def test_unknown_endpoints_rejected():
    with pytest.raises(WorkloadError, match="unknown src"):
        simple_graph(flows=[
            Flow("in", src="ghost", dst="t1"),
            Flow("mid", src="t1", dst="t2"),
            Flow("out", src="t2", dst="sink", deadline=ms(10)),
        ])


def test_duplicate_task_name_rejected():
    with pytest.raises(WorkloadError, match="duplicate task"):
        simple_graph(tasks=[Task("t1", wcet=1), Task("t1", wcet=2),
                            Task("t2", wcet=1)])


def test_role_overlap_rejected():
    with pytest.raises(WorkloadError, match="multiple roles"):
        simple_graph(sources=["src", "t1"])


def test_direct_source_to_sink_rejected():
    with pytest.raises(WorkloadError, match="source-to-sink"):
        simple_graph(flows=[
            Flow("in", src="src", dst="t1"),
            Flow("mid", src="t1", dst="t2"),
            Flow("out", src="t2", dst="sink", deadline=ms(10)),
            Flow("bad", src="src", dst="sink", deadline=ms(10)),
        ])


def test_flow_criticality_inherits_from_producer():
    g = simple_graph(tasks=[
        Task("t1", wcet=100, criticality=Criticality.A),
        Task("t2", wcet=100, criticality=Criticality.C),
    ])
    assert g.flow_criticality(g.flow("mid")) == Criticality.A
    assert g.flow_criticality(g.flow("out")) == Criticality.C


def test_upstream_closure():
    g = avionics_workload()
    closure = g.upstream_closure("ctrl_law")
    assert closure == {"ctrl_law", "fusion", "nav", "autopilot"}


def test_tasks_feeding_sink_flow():
    g = avionics_workload()
    flow = g.flow("elevator_cmd")
    assert "ctrl_law" in g.tasks_feeding_sink_flow(flow)
    assert "ife_head" not in g.tasks_feeding_sink_flow(flow)


def test_restricted_to_drops_tasks_and_flows():
    g = avionics_workload()
    keep = {n for n, t in g.tasks.items()
            if t.criticality >= Criticality.B}
    sub = g.restricted_to(keep)
    assert "ife_head" not in sub.tasks
    assert all(f.src in sub.tasks or f.src in sub.sources
               for f in sub.flows)
    sub.validate()


def test_utilization():
    g = simple_graph()
    # 200us of work per 20ms period on 1 node = 0.01
    assert g.utilization(node_count=1) == pytest.approx(0.01)
    assert g.utilization(node_count=2) == pytest.approx(0.005)


# --------------------------------------------------------------- generators


@pytest.mark.parametrize("factory", [
    avionics_workload, industrial_workload, automotive_workload,
])
def test_domain_workloads_are_valid(factory):
    g = factory()
    g.validate()
    assert g.sink_flows()
    crits = {g.flow_criticality(f) for f in g.sink_flows()}
    assert Criticality.A in crits  # every domain has a safety-critical output
    assert Criticality.D in crits  # and a sheddable one


def test_avionics_has_mixed_criticality_tasks():
    g = avionics_workload()
    levels = {t.criticality for t in g.tasks.values()}
    assert levels == set(Criticality.ordered())


def test_pipeline_workload_shape():
    g = pipeline_workload(n_stages=4)
    assert len(g.tasks) == 4
    assert g.topological_order() == [f"pipeline.t{i}" for i in range(4)]


def test_pipeline_workload_rejects_zero_stages():
    with pytest.raises(ValueError):
        pipeline_workload(n_stages=0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_tasks=st.integers(min_value=3, max_value=30),
    n_layers=st.integers(min_value=1, max_value=3),
)
def test_property_random_workloads_always_valid(seed, n_tasks, n_layers):
    n_layers = min(n_layers, n_tasks)
    rng = DeterministicRandom(seed)
    g = random_workload(rng, n_tasks=n_tasks, n_layers=n_layers)
    g.validate()
    assert len(g.tasks) == n_tasks
    # Every task reachable in topological order, every sink flow deadlined.
    assert len(g.topological_order()) == n_tasks
    assert all(f.deadline is not None for f in g.sink_flows())


def test_random_workload_is_seed_deterministic():
    g1 = random_workload(DeterministicRandom(99), n_tasks=12)
    g2 = random_workload(DeterministicRandom(99), n_tasks=12)
    assert [t.name for t in g1.tasks.values()] == [
        t.name for t in g2.tasks.values()]
    assert [(f.name, f.src, f.dst) for f in g1.flows] == [
        (f.name, f.src, f.dst) for f in g2.flows]
