#!/usr/bin/env python3
"""Guard the tracked BENCH trajectories against regressions.

``benchmarks/results/BENCH_sim.json`` is a *tracked* trajectory: every
suite run appends one entry (git sha, date, per-scenario speedups and
events/sec — see ``tools/run_experiments.py``). This check compares the
latest entry against the committed baseline (the best earlier entry per
metric) and fails on a >20% regression.

Two metric classes, treated differently:

* **ratio metrics** (``best_speedup_milestones``, ``best_speedup_batched``
  per scenario) — checked by default. Both columns of a speedup come
  from the same process on the same machine, so runner load largely
  cancels out; a 20% drop means the optimisation layer itself decayed.
* **absolute metrics** (``best_events_per_s_*``) — only checked with
  ``--absolute``. Wall-clock throughput on shared CI runners is advice,
  not ground truth; enable this locally on a quiet machine.

The invariant column is always enforced: an entry recording
``all_traces_identical: false`` fails regardless of thresholds.

``benchmarks/results/BENCH_bounds.json`` is the second tracked
trajectory (static recovery bounds, appended by full-grid E21 runs) and
gets the same treatment with the polarity flipped:

* **soundness** is an invariant — a latest entry whose ``all_sound`` is
  false, or any scenario recording ``sound: false``, fails regardless
  of thresholds;
* **tightness ratios** (per scenario and fault class, bound over worst
  empirical recovery) are *lower*-is-better: the baseline is the best
  (smallest) earlier ratio and a >20% increase fails — a bound that
  drifts looser certifies less while still passing soundness.

``benchmarks/results/BENCH_geo.json`` is the third tracked trajectory
(region-sharded engine at geo scale, appended by E22 runs):

* byte-identity across shard counts is the invariant (an entry with
  ``all_traces_identical: false`` fails unconditionally);
* ``best_speedup_vs_single_loop`` and ``best_shard_ratio`` per
  deployment are ratio metrics with the usual regression threshold;
* additionally, any full entry (one whose ``max_nodes`` is >= 100)
  must keep the geo engine at >= 2x over the single-loop reference on
  its >=100-node deployment — ISSUE 10's acceptance floor, enforced as
  an absolute bar rather than a relative baseline so the trajectory
  can never drift below it in 20% steps;
* ``best_pool_speedup`` is core-count dependent and only checked with
  ``--absolute``.

Usage:  python tools/bench_check.py [--absolute] [--threshold PCT]
                [--path FILE] [--bounds-path FILE] [--geo-path FILE]

Exit codes: 0 ok (or fewer than two comparable entries), 1 regression or
broken invariant, 2 unreadable trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATH = os.path.join(REPO, "benchmarks", "results",
                            "BENCH_sim.json")
DEFAULT_BOUNDS_PATH = os.path.join(REPO, "benchmarks", "results",
                                   "BENCH_bounds.json")
DEFAULT_GEO_PATH = os.path.join(REPO, "benchmarks", "results",
                                "BENCH_geo.json")

RATIO_METRICS = ("best_speedup_full", "best_speedup_milestones",
                 "best_speedup_batched")
ABSOLUTE_METRICS = ("best_events_per_s_on", "best_events_per_s_batched",
                    "best_sweep_events_per_s")
GEO_RATIO_METRICS = ("best_speedup_vs_single_loop", "best_shard_ratio")
GEO_ABSOLUTE_METRICS = ("best_pool_speedup",)

#: ISSUE 10's acceptance floor: the sharded geo engine must stay >=2x
#: the single-loop reference on a >=100-node deployment.
GEO_SPEEDUP_FLOOR = 2.0
GEO_FLOOR_NODES = 100


def load_runs(path: str) -> list:
    with open(path) as f:
        payload = json.load(f)
    if isinstance(payload, dict) and isinstance(payload.get("runs"), list):
        return payload["runs"]
    if isinstance(payload, dict) and payload.get("cases"):
        # Legacy schema 1: a single bare aggregate, usable as baseline.
        return [payload]
    raise ValueError("no runs in trajectory")


def scenario_metrics(run: dict, metrics) -> dict:
    """{(scenario, metric): value} for every present, non-null metric."""
    out = {}
    for scenario, entry in (run.get("by_scenario") or {}).items():
        for metric in metrics:
            value = entry.get(metric)
            if value:
                out[(scenario, metric)] = value
    return out


def check(runs: list, metrics, threshold_pct: float) -> tuple:
    """``(problems, new)`` comparing the last run to the best baseline.

    The baseline per (scenario, metric) is the *maximum* over all
    earlier entries — a slow run appended yesterday must not become an
    excuse for being slow today. A scenario the baseline measured but
    the latest run didn't is skipped (smoke entries measure a subset of
    the full sweep); a (scenario, metric) present **only** in the latest
    run is returned in ``new`` so a freshly added trajectory column is
    announced, never silently ignored. An empty or one-entry trajectory
    has no baseline to regress against and passes cleanly.
    """
    if not runs:
        return [], []
    latest = runs[-1]
    problems = []
    if latest.get("all_traces_identical") is False:
        problems.append("latest entry: traces NOT byte-identical "
                        "(invariant broken — this is a bug, not a perf "
                        "regression)")
    current = scenario_metrics(latest, metrics)
    if len(runs) < 2:
        new = [f"{scenario}: {metric}"
               for scenario, metric in sorted(current)]
        return problems, new
    baseline: dict = {}
    for run in runs[:-1]:
        for key, value in scenario_metrics(run, metrics).items():
            baseline[key] = max(baseline.get(key, 0), value)
    floor = 1.0 - threshold_pct / 100.0
    for key, base in sorted(baseline.items()):
        value = current.get(key)
        if value is None:
            continue
        if value < base * floor:
            scenario, metric = key
            problems.append(
                f"{scenario}: {metric} regressed {base} -> {value} "
                f"(>{threshold_pct:.0f}% below baseline)")
    new = [f"{scenario}: {metric}"
           for scenario, metric in sorted(set(current) - set(baseline))]
    return problems, new


def bounds_ratios(run: dict) -> dict:
    """{(scenario, fault_class): tightness} for one bounds entry."""
    out = {}
    for scenario, entry in (run.get("by_scenario") or {}).items():
        for fault_class, ratio in (entry.get("class_tightness")
                                   or {}).items():
            if ratio:
                out[(scenario, fault_class)] = ratio
    return out


def check_bounds(runs: list, threshold_pct: float) -> tuple:
    """``(problems, new)`` for the static-bounds trajectory.

    Soundness is an unconditional invariant of the latest entry;
    tightness ratios are lower-is-better, compared against the best
    (smallest) earlier ratio per (scenario, class) — a loose run
    appended yesterday must not become an excuse for being loose today.
    """
    if not runs:
        return [], []
    latest = runs[-1]
    problems = []
    if latest.get("all_sound") is False:
        problems.append("latest bounds entry: soundness violated "
                        "(an empirical recovery escaped its static "
                        "bound — this is a bug, not a regression)")
    for scenario, entry in sorted((latest.get("by_scenario")
                                   or {}).items()):
        if entry.get("sound") is False:
            problems.append(f"{scenario}: static bound UNSOUND in "
                            f"latest entry")
    current = bounds_ratios(latest)
    if len(runs) < 2:
        new = [f"{scenario}: tightness[{fault_class}]"
               for scenario, fault_class in sorted(current)]
        return problems, new
    baseline: dict = {}
    for run in runs[:-1]:
        for key, value in bounds_ratios(run).items():
            baseline[key] = min(baseline.get(key, value), value)
    ceiling = 1.0 + threshold_pct / 100.0
    for key, base in sorted(baseline.items()):
        value = current.get(key)
        if value is None:
            continue
        if value > base * ceiling:
            scenario, fault_class = key
            problems.append(
                f"{scenario}: tightness[{fault_class}] loosened "
                f"{base} -> {value} (>{threshold_pct:.0f}% above "
                f"baseline)")
    new = [f"{scenario}: tightness[{fault_class}]"
           for scenario, fault_class in sorted(set(current)
                                               - set(baseline))]
    return problems, new


def check_geo_floor(runs: list) -> list:
    """The absolute >=2x floor on the latest *full* geo entry.

    Smoke entries (no >=100-node deployment measured) carry the
    byte-identity invariant but have nothing for the floor to bite on;
    they pass. A full entry whose best >=100-node speedup dipped below
    the floor fails regardless of how the relative baseline moved.
    """
    if not runs:
        return []
    latest = runs[-1]
    if (latest.get("max_nodes") or 0) < GEO_FLOOR_NODES:
        return []
    problems = []
    big = {name: entry
           for name, entry in (latest.get("by_scenario") or {}).items()
           if (entry.get("n_nodes") or 0) >= GEO_FLOOR_NODES}
    if not big:
        return [f"latest geo entry claims max_nodes="
                f"{latest.get('max_nodes')} but records no "
                f">={GEO_FLOOR_NODES}-node scenario"]
    for name, entry in sorted(big.items()):
        value = entry.get("best_speedup_vs_single_loop")
        if value is None or value < GEO_SPEEDUP_FLOOR:
            problems.append(
                f"{name}: geo engine at {value}x < "
                f"{GEO_SPEEDUP_FLOOR}x floor over the single-loop "
                f"reference")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--path", default=DEFAULT_PATH, metavar="FILE",
                        help="sim trajectory file (default: "
                             "benchmarks/results/BENCH_sim.json)")
    parser.add_argument("--bounds-path", default=DEFAULT_BOUNDS_PATH,
                        metavar="FILE",
                        help="static-bounds trajectory file (default: "
                             "benchmarks/results/BENCH_bounds.json)")
    parser.add_argument("--geo-path", default=DEFAULT_GEO_PATH,
                        metavar="FILE",
                        help="geo-sharding trajectory file (default: "
                             "benchmarks/results/BENCH_geo.json)")
    parser.add_argument("--threshold", type=float, default=20.0,
                        metavar="PCT",
                        help="allowed regression in percent (default 20)")
    parser.add_argument("--absolute", action="store_true",
                        help="also check absolute events/sec metrics "
                             "(off by default: wall clock on shared "
                             "runners is advice, not ground truth)")
    args = parser.parse_args()

    try:
        runs = load_runs(args.path)
    except (OSError, ValueError) as exc:
        print(f"bench_check: cannot read trajectory {args.path}: {exc}",
              file=sys.stderr)
        return 2

    metrics = RATIO_METRICS + (ABSOLUTE_METRICS if args.absolute else ())
    problems, new = check(runs, metrics, args.threshold)
    if not runs:
        print("bench_check: trajectory has no entries yet; nothing to "
              "compare")
        return 0
    latest = runs[-1]
    print(f"bench_check: {len(runs)} trajectory entries; latest "
          f"{latest.get('git_sha', '?')} ({latest.get('date_utc', '?')}, "
          f"{latest.get('cases', 0)} cases)")
    for entry in new:
        print(f"bench_check: NEW {entry} (no earlier baseline; "
              f"becomes one next run)")
    try:
        bounds_runs = load_runs(args.bounds_path)
    except (OSError, ValueError) as exc:
        print(f"bench_check: cannot read bounds trajectory "
              f"{args.bounds_path}: {exc}", file=sys.stderr)
        return 2
    bounds_problems, bounds_new = check_bounds(bounds_runs,
                                               args.threshold)
    problems += bounds_problems
    if bounds_runs:
        b_latest = bounds_runs[-1]
        print(f"bench_check: {len(bounds_runs)} bounds entries; latest "
              f"{b_latest.get('git_sha', '?')} "
              f"({b_latest.get('date_utc', '?')}, "
              f"{len(b_latest.get('by_scenario') or {})} scenarios, "
              f"all_sound={b_latest.get('all_sound')})")
    for entry in bounds_new:
        print(f"bench_check: NEW {entry} (no earlier baseline; "
              f"becomes one next run)")
    try:
        geo_runs = load_runs(args.geo_path)
    except (OSError, ValueError) as exc:
        print(f"bench_check: cannot read geo trajectory "
              f"{args.geo_path}: {exc}", file=sys.stderr)
        return 2
    geo_metrics = GEO_RATIO_METRICS + (GEO_ABSOLUTE_METRICS
                                       if args.absolute else ())
    geo_problems, geo_new = check(geo_runs, geo_metrics, args.threshold)
    problems += geo_problems
    problems += check_geo_floor(geo_runs)
    if geo_runs:
        g_latest = geo_runs[-1]
        print(f"bench_check: {len(geo_runs)} geo entries; latest "
              f"{g_latest.get('git_sha', '?')} "
              f"({g_latest.get('date_utc', '?')}, "
              f"{g_latest.get('cases', 0)} cases, max "
              f"{g_latest.get('max_nodes', 0)} nodes, best "
              f"{g_latest.get('best_speedup_vs_single_loop')}x vs "
              f"single loop)")
    for entry in geo_new:
        print(f"bench_check: NEW {entry} (no earlier baseline; "
              f"becomes one next run)")
    if problems:
        for p in problems:
            print(f"bench_check: FAIL {p}", file=sys.stderr)
        return 1
    print(f"bench_check: OK (no sim/geo metric more than "
          f"{args.threshold:.0f}% below baseline; bounds sound, no "
          f"tightness more than {args.threshold:.0f}% above baseline; "
          f"geo engine above the {GEO_SPEEDUP_FLOOR}x floor)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
