#!/usr/bin/env python3
"""Guard the tracked BENCH trajectories against regressions.

``benchmarks/results/BENCH_sim.json`` is a *tracked* trajectory: every
suite run appends one entry (git sha, date, per-scenario speedups and
events/sec — see ``tools/run_experiments.py``). This check compares the
latest entry against the committed baseline (the best earlier entry per
metric) and fails on a >20% regression.

Two metric classes, treated differently:

* **ratio metrics** (``best_speedup_milestones``, ``best_speedup_batched``
  per scenario) — checked by default. Both columns of a speedup come
  from the same process on the same machine, so runner load largely
  cancels out; a 20% drop means the optimisation layer itself decayed.
* **absolute metrics** (``best_events_per_s_*``) — only checked with
  ``--absolute``. Wall-clock throughput on shared CI runners is advice,
  not ground truth; enable this locally on a quiet machine.

The invariant column is always enforced: an entry recording
``all_traces_identical: false`` fails regardless of thresholds.

``benchmarks/results/BENCH_bounds.json`` is the second tracked
trajectory (static recovery bounds, appended by full-grid E21 runs) and
gets the same treatment with the polarity flipped:

* **soundness** is an invariant — a latest entry whose ``all_sound`` is
  false, or any scenario recording ``sound: false``, fails regardless
  of thresholds;
* **tightness ratios** (per scenario and fault class, bound over worst
  empirical recovery) are *lower*-is-better: the baseline is the best
  (smallest) earlier ratio and a >20% increase fails — a bound that
  drifts looser certifies less while still passing soundness.

Usage:  python tools/bench_check.py [--absolute] [--threshold PCT]
                [--path FILE] [--bounds-path FILE]

Exit codes: 0 ok (or fewer than two comparable entries), 1 regression or
broken invariant, 2 unreadable trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATH = os.path.join(REPO, "benchmarks", "results",
                            "BENCH_sim.json")
DEFAULT_BOUNDS_PATH = os.path.join(REPO, "benchmarks", "results",
                                   "BENCH_bounds.json")

RATIO_METRICS = ("best_speedup_full", "best_speedup_milestones",
                 "best_speedup_batched")
ABSOLUTE_METRICS = ("best_events_per_s_on", "best_events_per_s_batched",
                    "best_sweep_events_per_s")


def load_runs(path: str) -> list:
    with open(path) as f:
        payload = json.load(f)
    if isinstance(payload, dict) and isinstance(payload.get("runs"), list):
        return payload["runs"]
    if isinstance(payload, dict) and payload.get("cases"):
        # Legacy schema 1: a single bare aggregate, usable as baseline.
        return [payload]
    raise ValueError("no runs in trajectory")


def scenario_metrics(run: dict, metrics) -> dict:
    """{(scenario, metric): value} for every present, non-null metric."""
    out = {}
    for scenario, entry in (run.get("by_scenario") or {}).items():
        for metric in metrics:
            value = entry.get(metric)
            if value:
                out[(scenario, metric)] = value
    return out


def check(runs: list, metrics, threshold_pct: float) -> tuple:
    """``(problems, new)`` comparing the last run to the best baseline.

    The baseline per (scenario, metric) is the *maximum* over all
    earlier entries — a slow run appended yesterday must not become an
    excuse for being slow today. A scenario the baseline measured but
    the latest run didn't is skipped (smoke entries measure a subset of
    the full sweep); a (scenario, metric) present **only** in the latest
    run is returned in ``new`` so a freshly added trajectory column is
    announced, never silently ignored. An empty or one-entry trajectory
    has no baseline to regress against and passes cleanly.
    """
    if not runs:
        return [], []
    latest = runs[-1]
    problems = []
    if latest.get("all_traces_identical") is False:
        problems.append("latest entry: traces NOT byte-identical "
                        "(invariant broken — this is a bug, not a perf "
                        "regression)")
    current = scenario_metrics(latest, metrics)
    if len(runs) < 2:
        new = [f"{scenario}: {metric}"
               for scenario, metric in sorted(current)]
        return problems, new
    baseline: dict = {}
    for run in runs[:-1]:
        for key, value in scenario_metrics(run, metrics).items():
            baseline[key] = max(baseline.get(key, 0), value)
    floor = 1.0 - threshold_pct / 100.0
    for key, base in sorted(baseline.items()):
        value = current.get(key)
        if value is None:
            continue
        if value < base * floor:
            scenario, metric = key
            problems.append(
                f"{scenario}: {metric} regressed {base} -> {value} "
                f"(>{threshold_pct:.0f}% below baseline)")
    new = [f"{scenario}: {metric}"
           for scenario, metric in sorted(set(current) - set(baseline))]
    return problems, new


def bounds_ratios(run: dict) -> dict:
    """{(scenario, fault_class): tightness} for one bounds entry."""
    out = {}
    for scenario, entry in (run.get("by_scenario") or {}).items():
        for fault_class, ratio in (entry.get("class_tightness")
                                   or {}).items():
            if ratio:
                out[(scenario, fault_class)] = ratio
    return out


def check_bounds(runs: list, threshold_pct: float) -> tuple:
    """``(problems, new)`` for the static-bounds trajectory.

    Soundness is an unconditional invariant of the latest entry;
    tightness ratios are lower-is-better, compared against the best
    (smallest) earlier ratio per (scenario, class) — a loose run
    appended yesterday must not become an excuse for being loose today.
    """
    if not runs:
        return [], []
    latest = runs[-1]
    problems = []
    if latest.get("all_sound") is False:
        problems.append("latest bounds entry: soundness violated "
                        "(an empirical recovery escaped its static "
                        "bound — this is a bug, not a regression)")
    for scenario, entry in sorted((latest.get("by_scenario")
                                   or {}).items()):
        if entry.get("sound") is False:
            problems.append(f"{scenario}: static bound UNSOUND in "
                            f"latest entry")
    current = bounds_ratios(latest)
    if len(runs) < 2:
        new = [f"{scenario}: tightness[{fault_class}]"
               for scenario, fault_class in sorted(current)]
        return problems, new
    baseline: dict = {}
    for run in runs[:-1]:
        for key, value in bounds_ratios(run).items():
            baseline[key] = min(baseline.get(key, value), value)
    ceiling = 1.0 + threshold_pct / 100.0
    for key, base in sorted(baseline.items()):
        value = current.get(key)
        if value is None:
            continue
        if value > base * ceiling:
            scenario, fault_class = key
            problems.append(
                f"{scenario}: tightness[{fault_class}] loosened "
                f"{base} -> {value} (>{threshold_pct:.0f}% above "
                f"baseline)")
    new = [f"{scenario}: tightness[{fault_class}]"
           for scenario, fault_class in sorted(set(current)
                                               - set(baseline))]
    return problems, new


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--path", default=DEFAULT_PATH, metavar="FILE",
                        help="sim trajectory file (default: "
                             "benchmarks/results/BENCH_sim.json)")
    parser.add_argument("--bounds-path", default=DEFAULT_BOUNDS_PATH,
                        metavar="FILE",
                        help="static-bounds trajectory file (default: "
                             "benchmarks/results/BENCH_bounds.json)")
    parser.add_argument("--threshold", type=float, default=20.0,
                        metavar="PCT",
                        help="allowed regression in percent (default 20)")
    parser.add_argument("--absolute", action="store_true",
                        help="also check absolute events/sec metrics "
                             "(off by default: wall clock on shared "
                             "runners is advice, not ground truth)")
    args = parser.parse_args()

    try:
        runs = load_runs(args.path)
    except (OSError, ValueError) as exc:
        print(f"bench_check: cannot read trajectory {args.path}: {exc}",
              file=sys.stderr)
        return 2

    metrics = RATIO_METRICS + (ABSOLUTE_METRICS if args.absolute else ())
    problems, new = check(runs, metrics, args.threshold)
    if not runs:
        print("bench_check: trajectory has no entries yet; nothing to "
              "compare")
        return 0
    latest = runs[-1]
    print(f"bench_check: {len(runs)} trajectory entries; latest "
          f"{latest.get('git_sha', '?')} ({latest.get('date_utc', '?')}, "
          f"{latest.get('cases', 0)} cases)")
    for entry in new:
        print(f"bench_check: NEW {entry} (no earlier baseline; "
              f"becomes one next run)")
    try:
        bounds_runs = load_runs(args.bounds_path)
    except (OSError, ValueError) as exc:
        print(f"bench_check: cannot read bounds trajectory "
              f"{args.bounds_path}: {exc}", file=sys.stderr)
        return 2
    bounds_problems, bounds_new = check_bounds(bounds_runs,
                                               args.threshold)
    problems += bounds_problems
    if bounds_runs:
        b_latest = bounds_runs[-1]
        print(f"bench_check: {len(bounds_runs)} bounds entries; latest "
              f"{b_latest.get('git_sha', '?')} "
              f"({b_latest.get('date_utc', '?')}, "
              f"{len(b_latest.get('by_scenario') or {})} scenarios, "
              f"all_sound={b_latest.get('all_sound')})")
    for entry in bounds_new:
        print(f"bench_check: NEW {entry} (no earlier baseline; "
              f"becomes one next run)")
    if problems:
        for p in problems:
            print(f"bench_check: FAIL {p}", file=sys.stderr)
        return 1
    print(f"bench_check: OK (no sim metric more than "
          f"{args.threshold:.0f}% below baseline; bounds sound, no "
          f"tightness more than {args.threshold:.0f}% above baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
