"""AST determinism lint for the repro codebase (``python -m tools.lint``).

Layer 2 of the static-analysis subsystem (Layer 1, the plan verifier,
lives in :mod:`repro.verify`): a small pluggable AST linter that guards
the simulator's determinism invariants — no wall-clock reads, no global
RNG, no order-dependent set iteration, no float equality on deadlines.
See :mod:`tools.lint.rules` for the catalogue and
``docs/STATIC_ANALYSIS.md`` for how to add a rule.

Per-line suppression: append ``# lint: ignore[rule-id]`` (or
``ignore[*]``) with a justification comment.
"""

from .engine import (
    Violation,
    iter_python_files,
    lint_paths,
    lint_source,
    main,
    suppressed_rules,
)
from .rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "main",
    "suppressed_rules",
]
