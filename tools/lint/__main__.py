"""``python -m tools.lint`` entry point."""

import sys

from .engine import main

sys.exit(main())
