"""The lint engine: file walking, rule dispatch, pragma suppression.

Rules are plain objects (see :mod:`tools.lint.rules`) with an ``id``, a
``description``, an ``applies_to(path)`` scope predicate, and a
``check(tree)`` generator yielding ``(lineno, col, message)`` triples.
The engine parses each file once, runs every applicable rule over the
AST, and drops violations whose source line carries a matching
suppression pragma::

    deadline = now()  # lint: ignore[wallclock]  calibration only
    for n in nodes | extras:  # lint: ignore[*]

Run it as ``python -m tools.lint src/``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

_PRAGMA = re.compile(r"#\s*lint:\s*ignore\[([^\]]*)\]")


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


def suppressed_rules(source_line: str) -> Optional[set]:
    """Rule ids suppressed by a ``# lint: ignore[...]`` pragma on the
    line, or None when no pragma is present. ``*`` suppresses every
    rule."""
    match = _PRAGMA.search(source_line)
    if match is None:
        return None
    return {item.strip() for item in match.group(1).split(",") if item.strip()}


def lint_source(source: str, path: str, rules: Sequence) -> List[Violation]:
    """Lint one file's source text with every applicable rule."""
    applicable = [r for r in rules if r.applies_to(path)]
    if not applicable:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 0, col=0,
                          rule="parse-error", message=str(exc.msg))]
    lines = source.splitlines()
    violations: List[Violation] = []
    for rule in applicable:
        for lineno, col, message in rule.check(tree):
            source_line = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
            ignored = suppressed_rules(source_line)
            if ignored is not None and ("*" in ignored or rule.id in ignored):
                continue
            violations.append(Violation(
                path=path, line=lineno, col=col, rule=rule.id,
                message=message,
            ))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    result: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            result.extend(
                p for p in path.rglob("*.py")
                if "egg-info" not in str(p) and "__pycache__" not in str(p)
            )
        elif path.suffix == ".py":
            result.append(path)
    return sorted(set(result))


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence] = None) -> List[Violation]:
    """Lint every python file under ``paths``."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(
            lint_source(path.read_text(), str(path), rules)
        )
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .rules import ALL_RULES
    parser = argparse.ArgumentParser(
        prog="tools.lint",
        description="AST determinism lint for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="output format: human-readable text "
                             "(default) or a machine-readable JSON "
                             "object (for CI annotation tooling)")
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            import json
            print(json.dumps([{"id": r.id, "description": r.description}
                              for r in ALL_RULES], indent=2))
        else:
            for rule in ALL_RULES:
                print(f"{rule.id}: {rule.description}")
        return 0

    missing = [p for p in (args.paths or ["src"]) if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"tools.lint: no such path: {p}", file=sys.stderr)
        return 2

    files = iter_python_files(args.paths or ["src"])
    violations = lint_paths(args.paths or ["src"], rules=ALL_RULES)
    if args.format == "json":
        import json
        print(json.dumps({
            "checked_files": len(files),
            "violations": [v.to_dict() for v in violations],
        }, indent=2, sort_keys=True))
        return 1 if violations else 0
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s) "
              f"({len(files)} checked)")
        return 1
    print(f"checked {len(files)} file(s): no violations")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
