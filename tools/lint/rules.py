"""Determinism lint rules.

Each rule targets a way nondeterminism (or float brittleness) has crept
into simulators like this one and silently invalidated benchmark
numbers:

* ``wallclock`` — real-time clocks vary run to run; simulated components
  must read time from the engine (:mod:`repro.sim.time`, the node clock).
* ``unseeded-random`` — the process-global RNG is shared, unseeded, and
  order-dependent; randomness must flow through the engine's
  :class:`repro.sim.random.DeterministicRandom` and its labelled forks.
* ``set-iteration`` — iterating a bare ``set``/``frozenset``/``dict
  .keys()`` yields insertion-dependent order; anything feeding an event
  queue or schedule must be ``sorted(...)`` first.
* ``float-eq`` — ``==``/``!=`` against float literals is brittle for
  deadline arithmetic; the codebase keeps time in integer µs.
* ``unsorted-node-iteration`` — the model checker's byte-reproducibility
  guarantee and the fault layer's scripts both enumerate node ids;
  iterating ``.keys()``/``.values()``/``.items()`` of a node-id mapping
  (or a node-id set) without ``sorted(...)`` makes cell order, victim
  order, and therefore whole campaign reports insertion-dependent.
* ``engine-schedule-bypass`` — handler code must post work through
  ``node.call_at`` (which routes through the re-entrancy guard and the
  node's fault filter), not raw ``sim.schedule()``; a bypassed guard
  means a compromised node keeps scheduling after its behaviour should
  have silenced it.
* ``allocation-in-loop`` — the batched core's whole point is that the
  steady-state loop allocates nothing; a constructor call or container
  display inside one of its loops is either a perf regression waiting
  to be measured or an intentional preallocation, and the pragma makes
  the author say which.
* ``float-time-arithmetic`` — the static bounds analyzer's soundness
  claim is over *integer microseconds*: a stray true division or float
  literal in its arithmetic rounds a worst case down and quietly breaks
  dominance. The deliberate float sites (tightness ratios, millisecond
  display) carry pragmas saying so.

The first two are scoped to ``src/repro/sim``, ``src/repro/core`` and
``src/repro/perf`` (the determinism-critical layers); the clock/RNG
façades themselves (``sim/time.py``, ``sim/clock.py``,
``sim/random.py``) are exempt, being the sanctioned wrappers, as is
``perf/timing.py`` — the one module allowed to read the host clock,
because offline planning cost is precisely what it measures.
``set-iteration`` and ``float-eq`` apply everywhere;
``unsorted-node-iteration`` is scoped to ``repro/mc``, ``repro/faults``,
``repro/fuzz`` (campaign reports leak iteration order the same way
``mc`` reports do) and the batched core (whose emission plans feed the
event queue directly), ``engine-schedule-bypass`` to the layers that
hold a simulator reference but do not own the engine (``repro/core``,
``repro/mc``, ``repro/obs``, ``repro/faults``, ``repro/fuzz``) plus the
batched core's sanctioned transmit paths (which carry pragmas), and
``allocation-in-loop`` to the batched-core hot modules
(``repro/perf/batchcore``, ``repro/sim/message``). The region-sharded
core (``repro/perf/shardcore``) sits in every one of those scopes plus
``int-time``: its window loops are the innermost loops of a sharded
run, and its horizon arithmetic must stay in integer microseconds.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

Hit = Tuple[int, int, str]

#: Path fragments of the determinism-critical layers (posix-style).
RESTRICTED_FRAGMENTS = ("repro/sim/", "repro/core/", "repro/perf/",
                        "repro/obs/", "repro/mc/", "repro/fuzz/")
#: Layers where node-id iteration order leaks into campaign reports.
NODE_ORDER_FRAGMENTS = ("repro/mc/", "repro/faults/",
                        "repro/perf/batchcore", "repro/perf/shardcore",
                        "repro/fuzz/")
#: Layers that hold a simulator reference but do not own the engine.
SCHEDULE_CLIENT_FRAGMENTS = ("repro/core/", "repro/mc/", "repro/obs/",
                             "repro/faults/", "repro/perf/batchcore",
                             "repro/perf/shardcore", "repro/fuzz/")
#: Hot-path modules whose steady-state loops must not allocate.
HOT_LOOP_FRAGMENTS = ("repro/perf/batchcore", "repro/perf/shardcore",
                      "repro/sim/message")
#: Modules whose time arithmetic must stay in integer microseconds.
INT_TIME_FRAGMENTS = ("repro/verify/bounds", "repro/perf/shardcore")
#: Sanctioned wrapper modules, exempt from the scoped rules.
EXEMPT_SUFFIXES = ("repro/sim/time.py", "repro/sim/random.py",
                   "repro/sim/clock.py", "repro/perf/timing.py")


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def _in_restricted_layer(path: str) -> bool:
    posix = _posix(path)
    if posix.endswith(EXEMPT_SUFFIXES):
        return False
    return any(fragment in posix for fragment in RESTRICTED_FRAGMENTS)


class Rule:
    """Base class: id, description, scope predicate, AST check."""

    id = "abstract"
    description = ""

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        raise NotImplementedError


_WALLCLOCK_TIME_ATTRS = {
    "time", "monotonic", "perf_counter", "perf_counter_ns", "time_ns",
    "monotonic_ns", "localtime", "gmtime",
}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}


class WallClockRule(Rule):
    """Forbid real-time clock reads in the simulation/core layers."""

    id = "wallclock"
    description = ("wall-clock reads (time.time, datetime.now, "
                   "perf_counter, ...) are nondeterministic; use "
                   "repro.sim.time and the engine clock")

    def applies_to(self, path: str) -> bool:
        return _in_restricted_layer(path)

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time" and any(
                        a.name in _WALLCLOCK_TIME_ATTRS
                        for a in node.names):
                    yield (node.lineno, node.col_offset,
                           "importing wall-clock functions from `time`")
                if node.module == "datetime":
                    yield (node.lineno, node.col_offset,
                           "importing `datetime`: wall-clock dates have no "
                           "place in simulated time")
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                value = func.value
                if (isinstance(value, ast.Name) and value.id == "time"
                        and func.attr in _WALLCLOCK_TIME_ATTRS):
                    yield (node.lineno, node.col_offset,
                           f"call to time.{func.attr}()")
                elif (isinstance(value, ast.Name) and value.id == "datetime"
                        and func.attr in _WALLCLOCK_DATETIME_ATTRS):
                    yield (node.lineno, node.col_offset,
                           f"call to datetime.{func.attr}()")
                elif (isinstance(value, ast.Attribute)
                        and value.attr == "datetime"
                        and func.attr in _WALLCLOCK_DATETIME_ATTRS):
                    yield (node.lineno, node.col_offset,
                           f"call to datetime.datetime.{func.attr}()")


class UnseededRandomRule(Rule):
    """Forbid the process-global RNG in the simulation/core layers."""

    id = "unseeded-random"
    description = ("module-level random.* (and numpy.random.*) bypasses "
                   "the seeded engine RNG; use "
                   "repro.sim.random.DeterministicRandom forks")

    def applies_to(self, path: str) -> bool:
        return _in_restricted_layer(path)

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield (node.lineno, node.col_offset,
                           "importing names from the global `random` "
                           "module")
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                value = func.value
                if isinstance(value, ast.Name) and value.id == "random":
                    yield (node.lineno, node.col_offset,
                           f"call to random.{func.attr}()")
                elif (isinstance(value, ast.Attribute)
                        and value.attr == "random"
                        and isinstance(value.value, ast.Name)
                        and value.value.id in ("np", "numpy")):
                    yield (node.lineno, node.col_offset,
                           f"call to {value.value.id}.random."
                           f"{func.attr}()")


def _is_unordered_expr(node: ast.expr) -> bool:
    """Literal sets, set()/frozenset() calls, and dict .keys() views."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # Set algebra (a | b, a & b, a - b) over unordered operands.
        return (_is_unordered_expr(node.left)
                or _is_unordered_expr(node.right))
    return False


class SetIterationRule(Rule):
    """Flag iteration over expressions with no deterministic order."""

    id = "set-iteration"
    description = ("iterating a bare set/frozenset/dict.keys() has "
                   "insertion-dependent order; wrap in sorted(...) before "
                   "feeding schedules or event queues")

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        for node in ast.walk(tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_unordered_expr(it):
                    yield (it.lineno, it.col_offset,
                           "iteration over an unordered set/dict-view "
                           "expression")


class FloatEqualityRule(Rule):
    """Flag ``==``/``!=`` against float literals (deadline arithmetic)."""

    id = "float-eq"
    description = ("equality against a float literal is brittle for "
                   "deadline/time arithmetic; keep time in integer µs or "
                   "compare with a tolerance")

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if (isinstance(side, ast.Constant)
                            and isinstance(side.value, float)):
                        yield (node.lineno, node.col_offset,
                               f"equality comparison against float "
                               f"literal {side.value!r}")
                        break


class UnsortedNodeIterationRule(Rule):
    """Flag unsorted dict-view iteration in the node-order-critical
    layers (sets are already covered everywhere by ``set-iteration``;
    this rule adds the ``.values()``/``.items()`` views, whose order is
    insertion-dependent just the same)."""

    id = "unsorted-node-iteration"
    description = ("iterating .keys()/.values()/.items() of a node-id "
                   "mapping without sorted(...) makes cell and victim "
                   "order insertion-dependent, which breaks the "
                   "campaign's byte-reproducibility; wrap in sorted(...)")

    _VIEW_ATTRS = ("keys", "values", "items")

    def applies_to(self, path: str) -> bool:
        posix = _posix(path)
        return any(fragment in posix
                   for fragment in NODE_ORDER_FRAGMENTS)

    def _is_view_call(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._VIEW_ATTRS)

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        for node in ast.walk(tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_view_call(it):
                    yield (it.lineno, it.col_offset,
                           f"unsorted iteration over "
                           f".{it.func.attr}() view")


class EngineScheduleBypassRule(Rule):
    """Flag raw ``sim.schedule()`` calls from engine-client layers."""

    id = "engine-schedule-bypass"
    description = ("raw sim.schedule() from handler code bypasses the "
                   "node's re-entrancy guard and fault filter; post work "
                   "through node.call_at (the engine itself and "
                   "sanctioned transmit paths carry a pragma)")

    def applies_to(self, path: str) -> bool:
        posix = _posix(path)
        return any(fragment in posix
                   for fragment in SCHEDULE_CLIENT_FRAGMENTS)

    @staticmethod
    def _is_sim_receiver(value: ast.expr) -> bool:
        if isinstance(value, ast.Name):
            return value.id == "sim" or value.id.endswith("_sim")
        if isinstance(value, ast.Attribute):
            return value.attr in ("sim", "_sim")
        return False

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr == "schedule"
                    and self._is_sim_receiver(func.value)):
                yield (node.lineno, node.col_offset,
                       "raw sim.schedule() call from handler-layer code")


class AllocationInLoopRule(Rule):
    """Flag allocations inside loops of the batched-core hot modules.

    Constructor calls (Capitalized names, ``list``/``dict``/``set``/
    ``bytearray``), container displays, and comprehensions inside a
    ``for``/``while`` body defeat the pooling the batched core exists
    for. Intentional allocations — pool preallocation/growth, trace
    records that must be fresh objects, cold setup loops — carry a
    ``# lint: ignore[allocation-in-loop]`` pragma stating as much.
    """

    id = "allocation-in-loop"
    description = ("allocation inside a hot-module loop (constructor "
                   "call, container display, or comprehension); pool "
                   "it, hoist it, or mark intentional preallocation "
                   "with a pragma")

    _BUILTIN_ALLOCATORS = ("list", "dict", "set", "bytearray")

    def applies_to(self, path: str) -> bool:
        posix = _posix(path)
        return any(fragment in posix for fragment in HOT_LOOP_FRAGMENTS)

    def _allocation(self, node: ast.AST) -> str:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
                if name in self._BUILTIN_ALLOCATORS:
                    return f"{name}() call"
                if name[:1].isupper() and name.isidentifier():
                    return f"constructor call {name}(...)"
        elif isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return "container display"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            return "comprehension"
        return ""

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        seen = set()
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for stmt in loop.body + loop.orelse:
                for node in ast.walk(stmt):
                    what = self._allocation(node)
                    if not what:
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield (node.lineno, node.col_offset,
                           f"{what} inside a hot-path loop")


class FloatTimeArithmeticRule(Rule):
    """Keep the static-bounds analyzer in integer microseconds.

    The analyzer's dominance claim is an integer inequality; one true
    division in a bound formula rounds the worst case *down* and makes
    the claim silently false. Flags true division (``/``) and float
    literals appearing in arithmetic. The sanctioned float sites —
    tightness ratios and millisecond rendering — carry a
    ``# lint: ignore[float-time-arithmetic]`` pragma.
    """

    id = "float-time-arithmetic"
    description = ("true division or float literals in the bounds "
                   "package drift from the integer-µs discipline and "
                   "can round a worst case down; use //, _ceil_div, "
                   "and integer constants (ratio/display sites carry "
                   "a pragma)")

    def applies_to(self, path: str) -> bool:
        posix = _posix(path)
        return any(fragment in posix for fragment in INT_TIME_FRAGMENTS)

    def check(self, tree: ast.AST) -> Iterator[Hit]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.Div):
                yield (node.lineno, node.col_offset,
                       "true division (/) produces a float; use // or "
                       "_ceil_div for time quantities")
            elif isinstance(node.op, (ast.Add, ast.Sub, ast.Mult,
                                      ast.FloorDiv, ast.Mod)):
                for side in (node.left, node.right):
                    if (isinstance(side, ast.Constant)
                            and isinstance(side.value, float)):
                        yield (node.lineno, node.col_offset,
                               f"float literal {side.value!r} in time "
                               f"arithmetic")
                        break


ALL_RULES = (
    WallClockRule(),
    UnseededRandomRule(),
    SetIterationRule(),
    FloatEqualityRule(),
    UnsortedNodeIterationRule(),
    EngineScheduleBypassRule(),
    AllocationInLoopRule(),
    FloatTimeArithmeticRule(),
)

__all__ = [
    "ALL_RULES",
    "AllocationInLoopRule",
    "EngineScheduleBypassRule",
    "FloatEqualityRule",
    "FloatTimeArithmeticRule",
    "Rule",
    "SetIterationRule",
    "UnseededRandomRule",
    "UnsortedNodeIterationRule",
    "WallClockRule",
]
