#!/usr/bin/env python3
"""Regenerate every experiment and collate the tables into one report.

First statically verifies the mode graphs the experiments rely on
(``repro verify --strict`` on the canonical scenarios) — a benchmark
number produced from an unsound strategy is worse than no number. Then
runs the benchmark suite (which writes ``benchmarks/results/*.txt``) and
stitches the results into ``benchmarks/results/REPORT.txt`` in experiment
order — the file EXPERIMENTS.md quotes from.

The suite is sharded per benchmark file: ``--jobs N`` runs up to N
pytest shards concurrently, and one strategy cache (``--cache DIR``,
default ``benchmarks/.strategy_cache``; ``--no-cache`` disables) is
threaded through every shard via ``$REPRO_STRATEGY_CACHE``, so a rerun
with a warm cache skips all replanning. Two machine-readable perf
trajectories land next to the report:

* ``BENCH_suite.json`` — wall time per experiment file and for the
  whole suite, with the jobs/cache configuration that produced them;
* ``BENCH_planner.json`` — aggregated offline-planning stats (prepares,
  cache hit rate, plans computed vs memoised, plans/sec) from the
  ``planner_stats.jsonl`` stream the benchmark harness appends to;
* ``BENCH_obs.json`` — aggregated recovery-timeline observability
  (per-fault-kind phase spans, phase-sum integrity, dropped-message
  counters) from the ``obs_stats.jsonl`` stream;
* ``BENCH_sim.json`` — the *tracked* online-runtime trajectory: one
  entry appended per suite run (git sha, date, per-scenario events/sec
  and speedups, trace byte-identity verdicts) aggregated from the
  ``sim_stats.jsonl`` stream that E17/E19 append to. Unlike the other
  BENCH files this one is committed, so ``tools/bench_check.py`` can
  fail CI on regressions against the baseline entries;
* ``BENCH_mc.json`` — aggregated bounded model-checking results
  (campaigns by expectation, paths explored, dedup hit-rate, pruning
  ratio, states/sec, replay-confirmation counts) from the
  ``mc_stats.jsonl`` stream that E18 appends to;
* ``BENCH_fuzz.json`` — aggregated coverage-guided fuzzing results
  (campaigns by expectation, scripts evaluated, coverage keys,
  violating scripts found/minimised/replay-confirmed, runs/sec) from
  the ``fuzz_stats.jsonl`` stream that E20 appends to;
* ``BENCH_bounds.json`` — the *tracked* static-bounds trajectory: one
  entry appended per suite run whose E21 sweep ran the full benchmark
  grid (soundness verdicts and per-class tightness ratios per
  scenario) aggregated from the ``bounds_stats.jsonl`` stream. Like
  ``BENCH_sim.json`` it is committed, so ``tools/bench_check.py`` can
  fail CI when soundness breaks or tightness regresses;
* ``BENCH_geo.json`` — the *tracked* geo-sharding trajectory: one
  entry appended per suite run that exercised E22 (per-deployment
  wall clocks for the single-loop reference vs the sharded geo
  engine, pool sweep speedups, byte-identity verdicts) aggregated
  from the ``geo_stats.jsonl`` stream. Committed and gated by
  ``tools/bench_check.py``, including the >=2x speedup floor on the
  >=100-node deployment.

Usage:  python tools/run_experiments.py [--jobs N] [--only SUBSTR]
                [--cache DIR | --no-cache] [--skip-run] [--skip-verify]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(REPO, "benchmarks", "results")
PLANNER_STATS = os.path.join(RESULTS, "planner_stats.jsonl")
OBS_STATS = os.path.join(RESULTS, "obs_stats.jsonl")
SIM_STATS = os.path.join(RESULTS, "sim_stats.jsonl")
MC_STATS = os.path.join(RESULTS, "mc_stats.jsonl")
FUZZ_STATS = os.path.join(RESULTS, "fuzz_stats.jsonl")
BOUNDS_STATS = os.path.join(RESULTS, "bounds_stats.jsonl")
GEO_STATS = os.path.join(RESULTS, "geo_stats.jsonl")
CACHE_ENV_VAR = "REPRO_STRATEGY_CACHE"
DEFAULT_CACHE = os.path.join(REPO, "benchmarks", ".strategy_cache")

ORDER = [
    "e1_recovery_bound",
    "e2_replica_cost",
    "e3_timeliness",
    "e4_mixed_criticality",
    "e5_adversary_pacing",
    "e5_budget_rule",
    "e6_latency_decomposition",
    "e7_planner_scalability",
    "e8_plant_inertia",
    "e8_closed_loop",
    "e9_omission_blame",
    "e9_targeted_omission",
    "e10_evidence_flooding",
    "e11_ablation_plan_distance",
    "e12_ablation_placement",
    "e13_ablation_strategic",
    "e14_clock_sync",
    "e14_rogue_clock",
    "e15_resource_dependence",
    "e16_link_faults",
    "e17_online_throughput",
    "e18_model_check",
    "e19_batched_core",
    "e20_fuzz",
    "e21_static_bounds",
    "e22_geo_shards",
]


#: Scenarios whose strategies the experiments simulate; each is verified
#: with ``repro verify --strict`` before any benchmark runs. The fourth
#: element lists waived findings: avionics' n2 is *provably* never
#: attributable (its omission declarers tie with a co-charged innocent),
#: which the bounds analyzer reports as ``bound.unachievable`` — a
#: documented property of that deployment, not a defect to re-discover
#: per run.
VERIFY_SCENARIOS = [
    ("industrial", "fullmesh:7", 1, []),
    ("avionics", "mesh:3x3", 1, ["bound.unachievable:n2"]),
]


def suite_env(cache_dir: str) -> dict:
    """The environment every verification/benchmark subprocess gets."""
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    # Empty string = caching disabled (the harness honours set-but-empty).
    env[CACHE_ENV_VAR] = cache_dir
    return env


def preflight_verify(env: dict) -> int:
    """Statically verify the canonical experiment strategies."""
    for workload, topology, f, waivers in VERIFY_SCENARIOS:
        print(f"verifying mode graph: {workload} on {topology} (f={f})...")
        cmd = [sys.executable, "-m", "repro", "verify", "--strict",
               "--workload", workload, "--topology", topology,
               "--f", str(f)]
        for waiver in waivers:
            cmd += ["--waive", waiver]
        proc = subprocess.run(cmd, cwd=REPO, env=env)
        if proc.returncode != 0:
            print(f"static verification FAILED for {workload} on "
                  f"{topology}; refusing to benchmark an unsound "
                  f"strategy", file=sys.stderr)
            return proc.returncode
    return 0


def benchmark_files(only: str) -> list:
    """Benchmark shards, optionally filtered by ``--only``.

    ``only`` is a comma-separated list of substrings; a file runs when
    any of them matches its basename (``--only e17,e19`` reruns just the
    online-runtime pair).
    """
    files = sorted(glob.glob(os.path.join(REPO, "benchmarks", "test_*.py")))
    needles = [n.strip() for n in only.split(",") if n.strip()]
    if needles:
        files = [f for f in files
                 if any(n in os.path.basename(f) for n in needles)]
    return files


def run_shard(path: str, env: dict) -> dict:
    """One pytest shard: a single benchmark file, timed wall-to-wall."""
    rel = os.path.relpath(path, REPO)
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", rel, "--benchmark-only", "-q",
         "-p", "no:cacheprovider"],
        cwd=REPO, env=env, capture_output=True, text=True,
    )
    wall = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
    return {"file": rel, "wall_s": round(wall, 3),
            "returncode": proc.returncode}


def run_suite(files: list, jobs: int, env: dict) -> dict:
    start = time.perf_counter()
    if jobs > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            shards = list(pool.map(lambda p: run_shard(p, env), files))
    else:
        shards = [run_shard(p, env) for p in files]
    return {
        "jobs": jobs,
        "cache": env.get(CACHE_ENV_VAR) or None,
        "total_wall_s": round(time.perf_counter() - start, 3),
        "experiments": shards,
    }


def aggregate_planner_stats() -> dict:
    """Collapse the harness's per-prepare jsonl into one summary."""
    records = _read_jsonl(PLANNER_STATS)
    hits = sum(1 for r in records if r.get("cache_hit"))
    # Only prepares that consulted a cache (key recorded) enter the rate;
    # E7 deliberately plans uncached to measure raw planner cost.
    cached = sum(1 for r in records if r.get("cache_key"))
    computed = sum(r.get("plans_computed", 0) for r in records)
    memoised = sum(r.get("plans_memoised", 0) for r in records)
    planning_wall = sum(r.get("wall_s", 0.0) for r in records)
    prepares = len(records)
    return {
        "prepares": prepares,
        "cache_hits": hits,
        "cache_misses": cached - hits,
        "cache_hit_rate": round(hits / cached, 3) if cached else None,
        "plans_computed": computed,
        "plans_memoised": memoised,
        "plans_total": sum(r.get("plans_total", 0) for r in records),
        "planning_wall_s": round(planning_wall, 3),
        "plans_per_sec": (round((computed + memoised) / planning_wall, 1)
                          if planning_wall > 0 else None),
        "jobs_seen": sorted({r.get("jobs", 1) for r in records}),
    }


def _read_jsonl(path: str) -> list:
    records = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    except OSError:
        pass
    return records


def aggregate_obs_stats() -> dict:
    """Collapse the harness's per-run timeline jsonl into one summary.

    Groups per fault kind: count, min/max end-to-end recovery, and the
    worst observed span per phase; plus suite-wide phase-sum integrity
    (every timeline's spans must sum to its total — the invariant the
    obs layer guarantees by construction) and the union of
    ``messages_dropped`` counters seen across runs.
    """
    records = _read_jsonl(OBS_STATS)
    by_kind: dict = {}
    sum_mismatches = 0
    dropped: dict = {}
    for r in records:
        phases = r.get("phases", {})
        total = r.get("total_us", 0)
        if sum(phases.values()) != total:
            sum_mismatches += 1
        entry = by_kind.setdefault(r.get("fault_kind", "?"), {
            "timelines": 0,
            "min_total_us": None,
            "max_total_us": 0,
            "worst_phase_us": {},
        })
        entry["timelines"] += 1
        entry["min_total_us"] = (total if entry["min_total_us"] is None
                                 else min(entry["min_total_us"], total))
        entry["max_total_us"] = max(entry["max_total_us"], total)
        for phase, span in phases.items():
            entry["worst_phase_us"][phase] = max(
                entry["worst_phase_us"].get(phase, 0), span)
        for key, value in (r.get("messages_dropped") or {}).items():
            dropped[key] = dropped.get(key, 0) + value
    return {
        "timelines": len(records),
        "phase_sum_mismatches": sum_mismatches,
        "by_fault_kind": {k: by_kind[k] for k in sorted(by_kind)},
        "messages_dropped": dropped,
        "experiments_seen": sorted({r.get("experiment", "?")
                                    for r in records}),
    }


def aggregate_sim_stats() -> dict:
    """Collapse E17/E19's per-case jsonl into one online-runtime summary.

    Groups per scenario@mesh: wall times and speedups (best + worst
    across seeds, so a lucky run can't mask a regression), online
    events/sec for the fast path (E17) and the batched core + sweep
    (E19), verify-memo effectiveness, and whether *every* case's
    full-mode trace was byte-identical across configurations — the one
    invariant neither optimisation layer is allowed to trade away.
    """
    records = _read_jsonl(SIM_STATS)
    by_scenario: dict = {}
    for r in records:
        key = r.get("scenario", "?")
        if r.get("n_nodes"):
            key = f"{key}@n{r['n_nodes']}"
        entry = by_scenario.setdefault(key, {
            "cases": 0,
            "sim_events": 0,
            "best_speedup_full": None,
            "worst_speedup_full": None,
            "best_speedup_milestones": None,
            "worst_speedup_milestones": None,
            "best_speedup_batched": None,
            "worst_speedup_batched": None,
            "best_events_per_s_on": 0,
            "best_events_per_s_batched": 0,
            "best_sweep_events_per_s": 0,
            "verifies_off": 0,
            "verifies_on": 0,
            "memo_hits": 0,
            "memo_misses": 0,
        })
        entry["cases"] += 1
        entry["sim_events"] = max(entry["sim_events"],
                                  r.get("sim_events", 0))
        for col in ("speedup_full", "speedup_milestones",
                    "speedup_batched"):
            value = r.get(col)
            if value is None:
                continue
            best, worst = "best_" + col, "worst_" + col
            entry[best] = (value if entry[best] is None
                           else max(entry[best], value))
            entry[worst] = (value if entry[worst] is None
                            else min(entry[worst], value))
        entry["best_events_per_s_on"] = max(
            entry["best_events_per_s_on"], r.get("events_per_s_on") or 0)
        entry["best_events_per_s_batched"] = max(
            entry["best_events_per_s_batched"],
            r.get("events_per_s_batched") or 0)
        entry["best_sweep_events_per_s"] = max(
            entry["best_sweep_events_per_s"],
            r.get("sweep_events_per_s") or 0)
        for col in ("verifies_off", "verifies_on",
                    "memo_hits", "memo_misses"):
            entry[col] += r.get(col, 0)
    for entry in by_scenario.values():
        lookups = entry["memo_hits"] + entry["memo_misses"]
        entry["memo_hit_rate"] = (round(entry["memo_hits"] / lookups, 3)
                                  if lookups else None)
    return {
        "cases": len(records),
        "all_traces_identical": all(r.get("traces_identical")
                                    for r in records) if records else None,
        "best_speedup_milestones": max(
            (r.get("speedup_milestones") or 0 for r in records),
            default=None),
        "best_speedup_batched": max(
            (r.get("speedup_batched") or 0 for r in records),
            default=None),
        "by_scenario": {k: by_scenario[k] for k in sorted(by_scenario)},
        "experiments_seen": sorted({r.get("experiment", "?")
                                    for r in records}),
    }


def aggregate_mc_stats() -> dict:
    """Collapse E18's per-campaign jsonl into one model-checking summary.

    Groups campaigns by their expectation label: ``certify`` campaigns
    must all come out certified with zero violations, ``violate``
    campaigns must all exhibit replay-confirmed counterexamples — the
    CI mc-smoke job asserts both from this file. Dedup hit-rate and
    pruning ratio are aggregated over all explored paths (not averaged
    per campaign) so tiny smoke campaigns cannot skew them.
    """
    records = _read_jsonl(MC_STATS)
    by_expect: dict = {}
    for r in records:
        entry = by_expect.setdefault(r.get("expect", "?"), {
            "campaigns": 0,
            "certified": 0,
            "paths": 0,
            "distinct_states": 0,
            "dedup_hits": 0,
            "pruned": 0,
            "violating_paths": 0,
            "replay_confirmed": 0,
            "best_states_per_sec": 0.0,
        })
        entry["campaigns"] += 1
        entry["certified"] += 1 if r.get("certified") else 0
        for col in ("paths", "distinct_states", "dedup_hits", "pruned",
                    "violating_paths", "replay_confirmed"):
            entry[col] += r.get(col, 0)
        entry["best_states_per_sec"] = max(
            entry["best_states_per_sec"],
            round(r.get("states_per_sec") or 0.0, 1))
    for entry in by_expect.values():
        entry["dedup_hit_rate"] = (
            round(entry["dedup_hits"] / entry["paths"], 3)
            if entry["paths"] else None)
        denominator = entry["pruned"] + entry["paths"]
        entry["prune_ratio"] = (round(entry["pruned"] / denominator, 3)
                                if denominator else None)
    return {
        "campaigns": len(records),
        "paths": sum(r.get("paths", 0) for r in records),
        "by_expectation": {k: by_expect[k] for k in sorted(by_expect)},
        "experiments_seen": sorted({r.get("experiment", "?")
                                    for r in records}),
    }


def aggregate_fuzz_stats() -> dict:
    """Collapse E20's per-campaign jsonl into one fuzzing summary.

    Groups campaigns by their expectation label: ``find`` campaigns (a
    deliberately tightened recovery budget) must all surface at least
    one minimised, replay-confirmed violating script, ``clean``
    campaigns (the planned budget) must find none — the CI fuzz-smoke
    job asserts both from this file.
    """
    records = _read_jsonl(FUZZ_STATS)
    by_expect: dict = {}
    for r in records:
        entry = by_expect.setdefault(r.get("expect", "?"), {
            "campaigns": 0,
            "found": 0,
            "scripts_evaluated": 0,
            "coverage_keys": 0,
            "violating_scripts": 0,
            "counterexamples": 0,
            "replay_confirmed": 0,
            "best_runs_per_sec": 0.0,
        })
        entry["campaigns"] += 1
        entry["found"] += 1 if r.get("found") else 0
        for col in ("scripts_evaluated", "violating_scripts",
                    "counterexamples", "replay_confirmed"):
            entry[col] += r.get(col, 0)
        entry["coverage_keys"] = max(entry["coverage_keys"],
                                     r.get("coverage_keys", 0))
        entry["best_runs_per_sec"] = max(
            entry["best_runs_per_sec"],
            round(r.get("runs_per_sec") or 0.0, 1))
    return {
        "campaigns": len(records),
        "scripts_evaluated": sum(r.get("scripts_evaluated", 0)
                                 for r in records),
        "by_expectation": {k: by_expect[k] for k in sorted(by_expect)},
        "experiments_seen": sorted({r.get("experiment", "?")
                                    for r in records}),
    }


def aggregate_bounds_stats() -> dict:
    """Collapse E21's per-scenario jsonl into one static-bounds summary.

    Soundness is aggregated over *every* row (grid sweeps, corpus and
    mc-counterexample replays alike); per-scenario tightness is taken
    only from full-grid rows — smoke grids are too sparse for their
    worst-empirical denominators to be comparable, so a smoke run
    contributes soundness evidence but no tightness baseline.
    """
    records = _read_jsonl(BOUNDS_STATS)
    by_scenario: dict = {}
    for r in records:
        if r.get("grid") != "full":
            continue
        by_scenario[r.get("scenario", "?")] = {
            "sound": bool(r.get("sound")),
            "checked": r.get("checked", 0),
            "skipped_unachievable": r.get("skipped_unachievable", 0),
            "R_us": r.get("R_us"),
            "class_tightness": r.get("class_tightness", {}),
        }
    return {
        "rows": len(records),
        "timelines_checked": sum(r.get("checked", 0) for r in records),
        "all_sound": all(r.get("sound") for r in records)
        if records else None,
        "by_scenario": {k: by_scenario[k] for k in sorted(by_scenario)},
        "experiments_seen": sorted({r.get("experiment", "?")
                                    for r in records}),
    }


def aggregate_geo_stats() -> dict:
    """Collapse E22's per-case jsonl into one geo-sharding summary.

    Groups per deployment (``geo:RxM@nN``): wall clocks and speedups of
    the sharded geo engine over the single-loop reference (best + worst
    across cases), the in-process shard ratio, pool sweep speedups with
    the core count that produced them, and whether every case's full
    traces were byte-identical across shard counts — the invariant the
    sharded executor is never allowed to trade away.
    """
    records = _read_jsonl(GEO_STATS)
    by_scenario: dict = {}
    for r in records:
        key = r.get("scenario", "?")
        if r.get("n_nodes"):
            key = f"{key}@n{r['n_nodes']}"
        entry = by_scenario.setdefault(key, {
            "cases": 0,
            "n_nodes": r.get("n_nodes", 0),
            "sim_events": 0,
            "best_speedup_vs_single_loop": None,
            "worst_speedup_vs_single_loop": None,
            "best_shard_ratio": None,
            "best_pool_speedup": None,
            "pool_cores": None,
            "lookahead_us": r.get("lookahead_us"),
            "shard_counts": r.get("shard_counts", []),
        })
        entry["cases"] += 1
        entry["sim_events"] = max(entry["sim_events"],
                                  r.get("sim_events", 0))
        value = r.get("speedup_vs_single_loop")
        if value is not None:
            best = entry["best_speedup_vs_single_loop"]
            worst = entry["worst_speedup_vs_single_loop"]
            entry["best_speedup_vs_single_loop"] = (
                value if best is None else max(best, value))
            entry["worst_speedup_vs_single_loop"] = (
                value if worst is None else min(worst, value))
        ratio = r.get("shard_ratio")
        if ratio is not None:
            best = entry["best_shard_ratio"]
            entry["best_shard_ratio"] = (ratio if best is None
                                         else max(best, ratio))
        pool = r.get("pool_speedup")
        if pool is not None:
            best = entry["best_pool_speedup"]
            entry["best_pool_speedup"] = (pool if best is None
                                          else max(best, pool))
            entry["pool_cores"] = r.get("cores")
    return {
        "cases": len(records),
        "all_traces_identical": all(r.get("traces_identical")
                                    for r in records) if records else None,
        "max_nodes": max((r.get("n_nodes", 0) for r in records),
                         default=0),
        "best_speedup_vs_single_loop": max(
            (r.get("speedup_vs_single_loop") or 0 for r in records),
            default=None),
        "by_scenario": {k: by_scenario[k] for k in sorted(by_scenario)},
        "experiments_seen": sorted({r.get("experiment", "?")
                                    for r in records}),
    }


def write_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def update_sim_trajectory(path: str, aggregate: dict) -> bool:
    """Append this suite run's aggregate to the tracked trajectory.

    ``BENCH_sim.json`` is committed (the other BENCH files are
    regenerated scratch): ``{"schema": 2, "runs": [entry, ...]}``, one
    entry per suite run that actually produced sim measurements, stamped
    with the git sha and UTC date that produced it. Runs that exercised
    no sim benchmark (e.g. ``--only e7``) append nothing, so a filtered
    rerun can never dilute the trajectory with empty entries. A legacy
    schema-1 file (a bare aggregate dict) is adopted as the first entry.
    Returns True when an entry was appended.
    """
    if not aggregate.get("cases"):
        return False
    try:
        with open(path) as f:
            existing = json.load(f)
    except (OSError, ValueError):
        existing = None
    if isinstance(existing, dict) and isinstance(existing.get("runs"),
                                                 list):
        runs = existing["runs"]
    elif isinstance(existing, dict) and existing.get("cases"):
        runs = [{"git_sha": "unknown", "date_utc": None, **existing}]
    else:
        runs = []
    from datetime import datetime, timezone
    runs.append({
        "git_sha": git_sha(),
        "date_utc": datetime.now(timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        **aggregate,
    })
    write_json(path, {"schema": 2, "runs": runs})
    return True


def update_bounds_trajectory(path: str, aggregate: dict) -> bool:
    """Append this suite run's static-bounds aggregate to the tracked
    trajectory.

    Mirrors :func:`update_sim_trajectory`: ``BENCH_bounds.json`` is
    committed, ``{"schema": 1, "runs": [entry, ...]}``, one entry per
    suite run whose E21 sweep produced *full-grid* tightness rows.
    Smoke-only runs (the CI bounds-smoke job) append nothing — their
    sparse grids would dilute the tightness baseline with incomparable
    denominators. Returns True when an entry was appended.
    """
    if not aggregate.get("by_scenario"):
        return False
    try:
        with open(path) as f:
            existing = json.load(f)
    except (OSError, ValueError):
        existing = None
    if isinstance(existing, dict) and isinstance(existing.get("runs"),
                                                 list):
        runs = existing["runs"]
    else:
        runs = []
    from datetime import datetime, timezone
    runs.append({
        "git_sha": git_sha(),
        "date_utc": datetime.now(timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        **aggregate,
    })
    write_json(path, {"schema": 1, "runs": runs})
    return True


def update_geo_trajectory(path: str, aggregate: dict) -> bool:
    """Append this suite run's geo-sharding aggregate to the tracked
    trajectory.

    Mirrors :func:`update_sim_trajectory`: ``BENCH_geo.json`` is
    committed, ``{"schema": 1, "runs": [entry, ...]}``, one entry per
    suite run that actually exercised E22 (smoke or full — smoke
    entries carry the byte-identity verdict for their small deployment
    and simply have no >=100-node scenario for the floor to bite on).
    Returns True when an entry was appended.
    """
    if not aggregate.get("cases"):
        return False
    try:
        with open(path) as f:
            existing = json.load(f)
    except (OSError, ValueError):
        existing = None
    if isinstance(existing, dict) and isinstance(existing.get("runs"),
                                                 list):
        runs = existing["runs"]
    else:
        runs = []
    from datetime import datetime, timezone
    runs.append({
        "git_sha": git_sha(),
        "date_utc": datetime.now(timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        **aggregate,
    })
    write_json(path, {"schema": 1, "runs": runs})
    return True


def collate_report(only: str) -> int:
    missing = []
    sections = []
    for name in ORDER:
        path = os.path.join(RESULTS, f"{name}.txt")
        if not os.path.exists(path):
            missing.append(name)
            continue
        with open(path) as f:
            sections.append(f.read().rstrip("\n"))

    report_path = os.path.join(RESULTS, "REPORT.txt")
    with open(report_path, "w") as f:
        f.write(
            "Reproduction report - Fault Tolerance and the Five-Second "
            "Rule (HotOS XV, 2015)\n"
            "Generated by tools/run_experiments.py; see EXPERIMENTS.md "
            "for claim-by-claim analysis.\n"
        )
        f.write("\n\n".join(sections))
        f.write("\n")
    print(f"report written to {report_path} "
          f"({len(sections)} experiments)")
    if missing:
        print(f"WARNING: missing results: {', '.join(missing)}",
              file=sys.stderr)
        # A filtered run legitimately regenerates only a subset.
        return 0 if only else 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="benchmark shards to run concurrently "
                             "(one pytest process per benchmark file)")
    parser.add_argument("--only", default="", metavar="SUBSTRS",
                        help="run only benchmark files whose name "
                             "contains any of the comma-separated "
                             "substrings (e.g. e7 or e17,e19)")
    parser.add_argument("--cache", default=DEFAULT_CACHE, metavar="DIR",
                        help="shared strategy cache directory "
                             "(default: benchmarks/.strategy_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the strategy cache (replan "
                             "everything)")
    parser.add_argument("--skip-run", action="store_true",
                        help="collate existing results without re-running")
    parser.add_argument("--skip-verify", action="store_true",
                        help="skip the static mode-graph verification "
                             "pre-flight")
    args = parser.parse_args()
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    cache_dir = "" if args.no_cache else args.cache
    env = suite_env(cache_dir)

    if not args.skip_verify and not args.skip_run:
        rc = preflight_verify(env)
        if rc != 0:
            return rc

    if not args.skip_run:
        files = benchmark_files(args.only)
        if not files:
            print(f"no benchmark files match --only {args.only!r}",
                  file=sys.stderr)
            return 2
        os.makedirs(RESULTS, exist_ok=True)
        # Fresh planning/obs/sim/mc/fuzz-stats streams for this run.
        for stream in (PLANNER_STATS, OBS_STATS, SIM_STATS, MC_STATS,
                       FUZZ_STATS, BOUNDS_STATS, GEO_STATS):
            with open(stream, "w"):
                pass
        print(f"running {len(files)} benchmark shards "
              f"(jobs={args.jobs}, cache="
              f"{cache_dir or 'disabled'})...")
        suite = run_suite(files, args.jobs, env)
        write_json(os.path.join(RESULTS, "BENCH_suite.json"), suite)
        write_json(os.path.join(RESULTS, "BENCH_planner.json"),
                   aggregate_planner_stats())
        write_json(os.path.join(RESULTS, "BENCH_obs.json"),
                   aggregate_obs_stats())
        appended = update_sim_trajectory(
            os.path.join(RESULTS, "BENCH_sim.json"),
            aggregate_sim_stats())
        if appended:
            print("BENCH_sim.json: trajectory entry appended "
                  "(tracked file — commit it to extend the baseline)")
        write_json(os.path.join(RESULTS, "BENCH_mc.json"),
                   aggregate_mc_stats())
        write_json(os.path.join(RESULTS, "BENCH_fuzz.json"),
                   aggregate_fuzz_stats())
        bounds_appended = update_bounds_trajectory(
            os.path.join(RESULTS, "BENCH_bounds.json"),
            aggregate_bounds_stats())
        if bounds_appended:
            print("BENCH_bounds.json: trajectory entry appended "
                  "(tracked file — commit it to extend the baseline)")
        geo_appended = update_geo_trajectory(
            os.path.join(RESULTS, "BENCH_geo.json"),
            aggregate_geo_stats())
        if geo_appended:
            print("BENCH_geo.json: trajectory entry appended "
                  "(tracked file — commit it to extend the baseline)")
        print(f"suite: {suite['total_wall_s']}s wall over "
              f"{len(files)} shards; perf trajectory in "
              f"BENCH_suite.json / BENCH_planner.json / "
              f"BENCH_obs.json / BENCH_sim.json / BENCH_mc.json / "
              f"BENCH_fuzz.json / BENCH_bounds.json / BENCH_geo.json")
        failed = [s for s in suite["experiments"] if s["returncode"] != 0]
        if failed:
            print("benchmark shards failed: "
                  + ", ".join(s["file"] for s in failed), file=sys.stderr)
            return 1

    return collate_report(args.only)


if __name__ == "__main__":
    sys.exit(main())
